"""Deterministic virtual-rank simulator with per-rank ledgers.

Execution model
---------------
A single Python driver executes the factorization schedule and narrates it
to the simulator as *events on virtual ranks*: ``compute``, ``send``,
``recv``, ``alloc``/``free``. Each rank has a clock; blocking semantics are:

* ``compute(r, flops, kind)`` advances ``r``'s clock by the modeled kernel
  time and books the flops under ``kind``;
* ``send(src, dst, words)`` advances ``src`` by ``alpha + beta*words`` (the
  NIC is busy for the transfer) and enqueues the message with its arrival
  time;
* ``recv(dst, src)`` pops the matching message FIFO and advances ``dst`` to
  ``max(clock[dst], arrival)`` — if the message arrived while ``dst`` was
  computing, the wait is zero. This is how the lookahead pipeline's
  communication/computation overlap manifests: drivers that post sends
  early hide them behind later GEMMs.

Hot drivers can book whole panels of compute events in one call with
:meth:`Simulator.compute_batch`; it is bit-for-bit equivalent to the
per-event loop (``np.add.at`` applies the increments sequentially, in
order, even for repeated ranks) while paying the Python call overhead
once per panel instead of once per block pair.

Everything not booked as compute is, by definition, non-overlapped
communication/synchronization — the paper's ``T_comm``.

The driver must issue events in a causally valid order (a ``recv`` only
after its ``send``); :class:`CommError` flags violations. Because the
collectives are built from these point-to-point events, volume conservation
(Σ words sent = Σ words received) holds mechanically, and tests assert it.

Fork/merge
----------
Algorithm 1's per-level 2D factorizations touch *disjoint* rank sets, so
a parallel host can execute them in separate OS processes against
*forked* sub-simulators (:meth:`Simulator.fork`) and splice the resulting
:class:`LedgerDelta` objects back with :meth:`Simulator.merge_delta`.
Because each forked rank starts from its exact parent-side ledger state
and undergoes the exact event sequence the serial schedule would have
issued, the merged per-rank arrays are *copies* of what the serial run
produces — bit-for-bit, with no floating-point reassociation anywhere.
The only cross-rank state, ``event_counts``, is integer-summed.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

# COMPUTE_KINDS / PHASES are canonically defined in repro.comm.events and
# re-exported here: the ledger layout is keyed by them and most callers
# import them alongside the Simulator.
from repro.comm.events import COMPUTE_KINDS, PHASES
from repro.comm.machine import Machine
from repro.utils import check_positive_int

if TYPE_CHECKING:  # avoid the comm <-> analysis import cycle at runtime
    from repro.analysis.trace import Trace

__all__ = ["Simulator", "CommError", "LedgerDelta"]

#: List-input compute batches below this size book through a scalar loop:
#: ``np.asarray`` + the validation reductions + ``np.add.at`` cost more
#: than per-element numpy indexing until batches reach a few hundred
#: events. Both paths apply identical additions in identical order.
_SCALAR_BATCH_MAX = 256


class CommError(RuntimeError):
    """A causality or protocol violation in the simulated schedule."""


@dataclass
class LedgerDelta:
    """Compact ledger state of a forked sub-simulator, ready to merge.

    Per-rank arrays hold the *absolute* final values for ``ranks`` (their
    rank sets are disjoint across concurrent forks, so merging copies
    rather than sums and stays bit-exact); ``event_counts`` holds integer
    increments accumulated since the fork.
    """

    ranks: np.ndarray
    clock: np.ndarray
    flops: dict[str, np.ndarray]
    t_compute: dict[str, np.ndarray]
    words_sent: dict[str, np.ndarray]
    words_recv: dict[str, np.ndarray]
    msgs_sent: dict[str, np.ndarray]
    msgs_recv: dict[str, np.ndarray]
    mem_current: np.ndarray
    mem_peak: np.ndarray
    event_counts: dict[str, int] = field(default_factory=dict)


class Simulator:
    """Virtual ranks, clocks, message queues and cost ledgers."""

    def __init__(self, nranks: int, machine: Machine | None = None,
                 trace: "Trace | None" = None, topology=None):
        self.nranks = check_positive_int(nranks, "nranks")
        self.machine = machine or Machine.edison_like()
        self.trace = trace
        #: Optional network model (see repro.comm.topology): scales the
        #: per-message alpha and beta by (src, dst)-dependent factors.
        self.topology = topology
        self.clock = np.zeros(self.nranks)

        self.flops = {k: np.zeros(self.nranks) for k in COMPUTE_KINDS}
        self.t_compute = {k: np.zeros(self.nranks) for k in COMPUTE_KINDS}
        self.words_sent = {p: np.zeros(self.nranks) for p in PHASES}
        self.words_recv = {p: np.zeros(self.nranks) for p in PHASES}
        self.msgs_sent = {p: np.zeros(self.nranks, dtype=np.int64) for p in PHASES}
        self.msgs_recv = {p: np.zeros(self.nranks, dtype=np.int64) for p in PHASES}

        self.mem_current = np.zeros(self.nranks)
        self.mem_peak = np.zeros(self.nranks)

        self.phase: str = "fact"
        self._queues: dict[tuple[int, int], deque] = defaultdict(deque)

        #: Per-kind event counts (compute kinds plus 'send', 'recv',
        #: 'offload') — perf counters for the batched-kernel reports.
        self.event_counts: dict[str, int] = defaultdict(int)

        #: Optional fault injector (repro.resilience.FaultInjector):
        #: perturbs compute durations and message arrivals
        #: deterministically. ``None`` (the default) leaves every fast
        #: path untouched — ledgers stay bit-identical to seed.
        self.faults = None

        # Optional per-rank accelerators (attach_accelerator).
        self.accelerator = None
        self.accel_clock: np.ndarray | None = None
        self.accel_flops: np.ndarray | None = None
        self.offloaded_updates: np.ndarray | None = None

    # -- validation helpers --------------------------------------------------

    def _check_rank(self, r: int) -> int:
        if not 0 <= r < self.nranks:
            raise CommError(f"rank {r} out of range [0, {self.nranks})")
        return int(r)

    def set_phase(self, phase: str) -> None:
        if phase not in PHASES:
            raise CommError(f"unknown phase {phase!r}")
        self.phase = phase

    def attach_faults(self, injector) -> None:
        """Install a :class:`repro.resilience.FaultInjector`.

        While attached, ``compute`` durations pass through the
        injector's slow-rank scaling and every ``send`` may be dropped
        (timeout + retransmission, booked) or delayed. The batched fast
        paths fall back to per-event booking so every event is observed.
        """
        self.faults = injector

    # -- compute -------------------------------------------------------------

    def compute(self, rank: int, flops: float, kind: str,
                n_block_updates: int = 0) -> None:
        """Book ``flops`` of kernel ``kind`` on ``rank`` and advance its clock.

        ``n_block_updates`` adds the per-block pack/scatter overhead for
        Schur updates.
        """
        rank = self._check_rank(rank)
        if kind not in COMPUTE_KINDS:
            raise CommError(f"unknown compute kind {kind!r}")
        if flops < 0:
            raise CommError("flops must be non-negative")
        gamma = self.machine.gamma_gemm if kind in ("schur", "reduce_add") \
            else self.machine.gamma_panel
        dt = flops * gamma + n_block_updates * self.machine.gemm_overhead
        start = self.clock[rank]
        if self.faults is not None:
            dt = self.faults.scale_compute(rank, start, dt)
        self.clock[rank] += dt
        self.flops[kind][rank] += flops
        self.t_compute[kind][rank] += dt
        self.event_counts[kind] += 1
        if self.trace is not None:
            self.trace.record(rank, start, self.clock[rank], kind, self.phase)

    def compute_batch(self, ranks, flops, kind: str,
                      n_block_updates=0) -> None:
        """Book many compute events in one vectorized call.

        ``ranks`` and ``flops`` are parallel arrays (one entry per event);
        ``n_block_updates`` may be a scalar applied to every event or an
        array. Clock, flop, and time ledgers end up bit-for-bit identical
        to calling :meth:`compute` once per element in order — repeated
        ranks accumulate sequentially via ``np.add.at`` — so batched and
        per-event drivers produce *exactly* the same simulation. With a
        trace attached the call falls back to per-event booking so the
        recorded intervals match the loop path, too.

        Plain-``list`` inputs with a scalar ``n_block_updates`` (the plan
        compiler's fused payloads) take a scalar fast path below
        ``_SCALAR_BATCH_MAX`` events: same additions in the same order,
        without the array conversion and reduction overhead that dwarfs
        small batches.
        """
        if kind not in COMPUTE_KINDS:
            raise CommError(f"unknown compute kind {kind!r}")
        if type(ranks) is list and type(flops) is list \
                and isinstance(n_block_updates, (int, float)):
            if len(ranks) != len(flops):
                raise CommError("ranks and flops must have the same length")
            if not ranks:
                return
            if min(ranks) < 0 or max(ranks) >= self.nranks:
                raise CommError(
                    f"batch contains ranks outside [0, {self.nranks})")
            if min(flops) < 0:
                raise CommError("flops must be non-negative")
            if self.trace is None and self.faults is None \
                    and len(ranks) < _SCALAR_BATCH_MAX:
                gamma = self.machine.gamma_gemm \
                    if kind in ("schur", "reduce_add") \
                    else self.machine.gamma_panel
                ov = n_block_updates * self.machine.gemm_overhead
                clock = self.clock
                fl = self.flops[kind]
                tc = self.t_compute[kind]
                for r, f in zip(ranks, flops):
                    dt = f * gamma + ov
                    clock[r] += dt
                    fl[r] += f
                    tc[r] += dt
                self.event_counts[kind] += len(ranks)
                return
        ranks = np.asarray(ranks, dtype=np.intp).ravel()
        flops = np.asarray(flops, dtype=np.float64).ravel()
        if ranks.shape != flops.shape:
            raise CommError("ranks and flops must have the same length")
        if ranks.size == 0:
            return
        if int(ranks.min()) < 0 or int(ranks.max()) >= self.nranks:
            raise CommError(
                f"batch contains ranks outside [0, {self.nranks})")
        if float(flops.min()) < 0:
            raise CommError("flops must be non-negative")
        if self.trace is not None or self.faults is not None:
            upd = np.broadcast_to(np.asarray(n_block_updates), ranks.shape)
            for r, f, u in zip(ranks, flops, upd):
                self.compute(int(r), float(f), kind,
                             n_block_updates=int(u))
            return
        gamma = self.machine.gamma_gemm if kind in ("schur", "reduce_add") \
            else self.machine.gamma_panel
        dt = flops * gamma + n_block_updates * self.machine.gemm_overhead
        np.add.at(self.clock, ranks, dt)
        np.add.at(self.flops[kind], ranks, flops)
        np.add.at(self.t_compute[kind], ranks, dt)
        self.event_counts[kind] += int(ranks.size)

    # -- point-to-point --------------------------------------------------------

    def send(self, src: int, dst: int, words: float) -> None:
        """Post a message; the sender's NIC is busy for the full transfer."""
        src = self._check_rank(src)
        dst = self._check_rank(dst)
        if words < 0:
            raise CommError("words must be non-negative")
        if src == dst:
            return  # self-messages are free (local pointer pass)
        start = self.clock[src]
        alpha, beta = self.machine.alpha, self.machine.beta
        if self.topology is not None:
            alpha *= self.topology.latency_factor(src, dst)
            beta *= self.topology.bandwidth_factor(src, dst)
        self.clock[src] += alpha + beta * words
        if self.faults is not None:
            # Dropped message: the sender times out and retransmits; each
            # retry holds the NIC for another full transfer and is booked
            # as real traffic. Delays push only the arrival time back.
            for _ in range(self.faults.count_drops(src, dst,
                                                   self.clock[src])):
                self.clock[src] += self.faults.timeout + alpha + beta * words
                self.words_sent[self.phase][src] += words
                self.msgs_sent[self.phase][src] += 1
                self.event_counts["send"] += 1
            arrival = self.clock[src] + self.faults.added_delay(
                src, dst, self.clock[src])
        else:
            arrival = self.clock[src]
        self._queues[(src, dst)].append((arrival, words))
        self.words_sent[self.phase][src] += words
        self.msgs_sent[self.phase][src] += 1
        self.event_counts["send"] += 1
        if self.trace is not None:
            self.trace.record(src, start, self.clock[src], "send",
                              self.phase, words)

    def recv(self, dst: int, src: int) -> float:
        """Complete the oldest pending message from ``src``; returns its size."""
        src = self._check_rank(src)
        dst = self._check_rank(dst)
        if src == dst:
            return 0.0
        q = self._queues[(src, dst)]
        if not q:
            raise CommError(f"recv on rank {dst} from {src}: no pending message")
        arrival, words = q.popleft()
        start = self.clock[dst]
        self.clock[dst] = max(self.clock[dst], arrival)
        self.words_recv[self.phase][dst] += words
        self.msgs_recv[self.phase][dst] += 1
        self.event_counts["recv"] += 1
        if self.trace is not None and self.clock[dst] > start:
            self.trace.record(dst, start, self.clock[dst], "recv_wait",
                              self.phase, words)
        return words

    def sendrecv(self, src: int, dst: int, words: float) -> None:
        self.send(src, dst, words)
        self.recv(dst, src)

    def sendrecv_batch(self, srcs, dsts, words, reduce_kind: str | None = None,
                       reduce_flops=None) -> None:
        """Book many matched ``send``→``recv`` pairs in one call.

        ``srcs``, ``dsts`` and ``words`` are parallel arrays — or plain
        lists, which skip the array conversion and reduction overhead
        entirely (the booking loop is scalar either way) — one entry per
        message. With ``reduce_kind`` set, each pair is followed by a
        compute event of that kind on the destination rank —
        :func:`repro.comm.collectives.reduce_pairwise`'s contract, with
        ``reduce_flops`` defaulting to one flop per word. All ledgers end
        up bit-for-bit identical to issuing the three calls per element in
        order (the :meth:`compute_batch` contract): the per-event methods
        are replayed on local scalars with the same additions and maxes in
        the same sequence. Traced or topology-aware simulators — and
        subclasses, whose overridden ``send``/``recv``/``compute`` hooks
        must keep observing every event — fall back to the per-event loop.
        """
        if reduce_kind is not None and reduce_kind not in COMPUTE_KINDS:
            raise CommError(f"unknown compute kind {reduce_kind!r}")
        if type(srcs) is list and type(dsts) is list and type(words) is list \
                and (reduce_flops is None or type(reduce_flops) is list):
            if not (len(srcs) == len(dsts) == len(words)):
                raise CommError(
                    "srcs, dsts and words must have the same length")
            if not srcs:
                return
            if min(min(srcs), min(dsts)) < 0 \
                    or max(max(srcs), max(dsts)) >= self.nranks:
                raise CommError(
                    f"batch contains ranks outside [0, {self.nranks})")
            if min(words) < 0:
                raise CommError("words must be non-negative")
            if reduce_flops is None:
                flops = words
            else:
                flops = reduce_flops
                if len(flops) != len(words):
                    raise CommError("reduce_flops must match words in length")
                if min(flops) < 0:
                    raise CommError("flops must be non-negative")
            n_events = len(srcs)
        else:
            srcs = np.asarray(srcs, dtype=np.intp).ravel()
            dsts = np.asarray(dsts, dtype=np.intp).ravel()
            words = np.asarray(words, dtype=np.float64).ravel()
            if not (srcs.shape == dsts.shape == words.shape):
                raise CommError(
                    "srcs, dsts and words must have the same length")
            if srcs.size == 0:
                return
            lo = min(int(srcs.min()), int(dsts.min()))
            hi = max(int(srcs.max()), int(dsts.max()))
            if lo < 0 or hi >= self.nranks:
                raise CommError(
                    f"batch contains ranks outside [0, {self.nranks})")
            if float(words.min()) < 0:
                raise CommError("words must be non-negative")
            if reduce_flops is None:
                flops = words
            else:
                flops = np.asarray(reduce_flops, dtype=np.float64).ravel()
                if flops.shape != words.shape:
                    raise CommError("reduce_flops must match words in length")
                if float(flops.min()) < 0:
                    raise CommError("flops must be non-negative")
            n_events = int(srcs.size)
            srcs, dsts = srcs.tolist(), dsts.tolist()
            words, flops = words.tolist(), flops.tolist()
        if self.trace is not None or self.topology is not None \
                or self.faults is not None or type(self) is not Simulator:
            for s, d, w, f in zip(srcs, dsts, words, flops):
                self.sendrecv(int(s), int(d), float(w))
                if reduce_kind is not None:
                    self.compute(int(d), float(f), reduce_kind)
            return
        clock = self.clock
        alpha, beta = self.machine.alpha, self.machine.beta
        ws = self.words_sent[self.phase]
        wr = self.words_recv[self.phase]
        ms = self.msgs_sent[self.phase]
        mr = self.msgs_recv[self.phase]
        if reduce_kind is not None:
            gamma = self.machine.gamma_gemm \
                if reduce_kind in ("schur", "reduce_add") \
                else self.machine.gamma_panel
            fl = self.flops[reduce_kind]
            tc = self.t_compute[reduce_kind]
        npairs = 0
        for s, d, w, f in zip(srcs, dsts, words, flops):
            if s != d:
                # send: the queue append/popleft pair cancels, so only the
                # clock advance and the phase ledgers remain.
                arrival = clock[s] + (alpha + beta * w)
                clock[s] = arrival
                ws[s] += w
                ms[s] += 1
                # recv: max(own clock, arrival), exactly as recv() writes it.
                clock[d] = max(clock[d], arrival)
                wr[d] += w
                mr[d] += 1
                npairs += 1
            if reduce_kind is not None:
                dt = f * gamma
                clock[d] += dt
                fl[d] += f
                tc[d] += dt
        if npairs:
            self.event_counts["send"] += npairs
            self.event_counts["recv"] += npairs
        if reduce_kind is not None:
            self.event_counts[reduce_kind] += n_events

    # -- fork / merge -------------------------------------------------------

    def can_fork(self) -> bool:
        """Forking requires plain per-rank ledgers: no trace (globally
        ordered intervals), no topology (cross-fork link factors), no
        accelerator (device clocks are not part of the delta), no fault
        injector (its message-count state is global across ranks)."""
        return (self.trace is None and self.topology is None
                and self.accelerator is None and self.faults is None)

    def _pending_touching(self, rank_set: set[int]) -> int:
        return sum(len(q) for (s, d), q in self._queues.items()
                   if q and (s in rank_set or d in rank_set))

    def fork(self, ranks) -> "Simulator":
        """A fresh simulator carrying ``ranks``' exact ledger state.

        The returned sub-simulator has the same rank numbering and machine
        model; every ledger entry of ``ranks`` is copied, all other ranks
        start at zero, and ``event_counts`` starts empty so that
        :meth:`extract_delta` reports pure increments. Raises
        :class:`CommError` if the simulator is not forkable
        (:meth:`can_fork`) or if messages to/from ``ranks`` are pending.
        """
        if not self.can_fork():
            raise CommError("cannot fork a traced, topology-aware or "
                            "accelerator-attached simulator")
        idx = np.asarray(sorted(self._check_rank(r) for r in ranks),
                         dtype=np.intp)
        if self._pending_touching(set(idx.tolist())):
            raise CommError("cannot fork: pending messages touch the "
                            "forked rank set")
        sub = Simulator(self.nranks, self.machine)
        sub.phase = self.phase
        sub.clock[idx] = self.clock[idx]
        for k in COMPUTE_KINDS:
            sub.flops[k][idx] = self.flops[k][idx]
            sub.t_compute[k][idx] = self.t_compute[k][idx]
        for p in PHASES:
            sub.words_sent[p][idx] = self.words_sent[p][idx]
            sub.words_recv[p][idx] = self.words_recv[p][idx]
            sub.msgs_sent[p][idx] = self.msgs_sent[p][idx]
            sub.msgs_recv[p][idx] = self.msgs_recv[p][idx]
        sub.mem_current[idx] = self.mem_current[idx]
        sub.mem_peak[idx] = self.mem_peak[idx]
        return sub

    def extract_delta(self, ranks) -> LedgerDelta:
        """Package a forked run's ledger state for :meth:`merge_delta`.

        Verifies that the fork's events stayed inside ``ranks`` (any
        ledger activity on an outside rank means the schedule escaped its
        layer, which would make the merge silently wrong) and that no
        messages are still in flight.
        """
        idx = np.asarray(sorted(self._check_rank(r) for r in ranks),
                         dtype=np.intp)
        if self.pending_messages():
            raise CommError("extract_delta with messages still in flight")
        outside = np.ones(self.nranks, dtype=bool)
        outside[idx] = False
        escaped = self.clock[outside].any() or self.mem_peak[outside].any()
        for p in PHASES:
            escaped = escaped or self.words_sent[p][outside].any() \
                or self.words_recv[p][outside].any() \
                or self.msgs_sent[p][outside].any() \
                or self.msgs_recv[p][outside].any()
        for k in COMPUTE_KINDS:
            escaped = escaped or self.flops[k][outside].any() \
                or self.t_compute[k][outside].any()
        if escaped:
            raise CommError("forked events escaped the declared rank set")
        return LedgerDelta(
            ranks=idx,
            clock=self.clock[idx].copy(),
            flops={k: self.flops[k][idx].copy() for k in COMPUTE_KINDS},
            t_compute={k: self.t_compute[k][idx].copy()
                       for k in COMPUTE_KINDS},
            words_sent={p: self.words_sent[p][idx].copy() for p in PHASES},
            words_recv={p: self.words_recv[p][idx].copy() for p in PHASES},
            msgs_sent={p: self.msgs_sent[p][idx].copy() for p in PHASES},
            msgs_recv={p: self.msgs_recv[p][idx].copy() for p in PHASES},
            mem_current=self.mem_current[idx].copy(),
            mem_peak=self.mem_peak[idx].copy(),
            event_counts=dict(self.event_counts),
        )

    def merge_delta(self, delta: LedgerDelta) -> None:
        """Splice a fork's final ledger state back into this simulator.

        Per-rank arrays are *copied* at ``delta.ranks`` (disjointness
        across concurrent forks makes this exact); event counts are
        integer-added. The caller merges deltas in grid order so that the
        whole operation is deterministic regardless of worker scheduling.
        """
        idx = np.asarray(delta.ranks, dtype=np.intp)
        if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= self.nranks):
            raise CommError("delta ranks outside this simulator")
        self.clock[idx] = delta.clock
        for k in COMPUTE_KINDS:
            self.flops[k][idx] = delta.flops[k]
            self.t_compute[k][idx] = delta.t_compute[k]
        for p in PHASES:
            self.words_sent[p][idx] = delta.words_sent[p]
            self.words_recv[p][idx] = delta.words_recv[p]
            self.msgs_sent[p][idx] = delta.msgs_sent[p]
            self.msgs_recv[p][idx] = delta.msgs_recv[p]
        self.mem_current[idx] = delta.mem_current
        self.mem_peak[idx] = delta.mem_peak
        for kind, n in delta.event_counts.items():
            if n:
                self.event_counts[kind] += int(n)

    # -- accelerator offload -----------------------------------------------

    def attach_accelerator(self, accel) -> None:
        """Give every rank an accelerator (see repro.comm.accelerator)."""
        self.accelerator = accel
        self.accel_clock = np.zeros(self.nranks)
        self.accel_flops = np.zeros(self.nranks)
        self.offloaded_updates = np.zeros(self.nranks, dtype=np.int64)

    def offload_gemm(self, rank: int, flops: float, words: float) -> None:
        """Enqueue a GEMM on ``rank``'s accelerator (asynchronous).

        Host pays the enqueue overhead; the device starts no earlier than
        the host's enqueue time and runs transfer + GEMM back-to-back.
        """
        rank = self._check_rank(rank)
        if self.accelerator is None:
            raise CommError("no accelerator attached")
        start = self.clock[rank]
        self.clock[rank] += self.accelerator.offload_overhead
        device_start = max(self.accel_clock[rank], self.clock[rank])
        self.accel_clock[rank] = device_start + \
            self.accelerator.device_time(flops, words)
        self.accel_flops[rank] += flops
        self.offloaded_updates[rank] += 1
        self.event_counts["offload"] += 1
        if self.trace is not None:
            self.trace.record(rank, start, self.clock[rank], "offload",
                              self.phase, words)

    def accel_sync(self, rank: int) -> None:
        """Block the host until ``rank``'s accelerator has drained."""
        rank = self._check_rank(rank)
        if self.accel_clock is not None:
            self.clock[rank] = max(self.clock[rank], self.accel_clock[rank])

    def accel_sync_all(self) -> None:
        if self.accel_clock is not None:
            np.maximum(self.clock, self.accel_clock, out=self.clock)

    # -- synchronization -------------------------------------------------------

    def barrier(self, ranks) -> None:
        """Synchronize ``ranks`` to their common maximum clock."""
        idx = [self._check_rank(r) for r in ranks]
        if idx:
            self.clock[idx] = self.clock[idx].max()

    def pending_messages(self) -> int:
        return sum(len(q) for q in self._queues.values())

    # -- memory ------------------------------------------------------------------

    def alloc(self, rank: int, words: float) -> None:
        rank = self._check_rank(rank)
        if words < 0:
            raise CommError("alloc words must be non-negative")
        self.mem_current[rank] += words
        self.mem_peak[rank] = max(self.mem_peak[rank], self.mem_current[rank])

    def free(self, rank: int, words: float) -> None:
        rank = self._check_rank(rank)
        self.mem_current[rank] -= words
        if self.mem_current[rank] < -1e-9:
            raise CommError(f"rank {rank} freed more memory than allocated")

    # -- derived quantities --------------------------------------------------------

    @property
    def makespan(self) -> float:
        """Critical-path time: the maximum rank clock."""
        return float(self.clock.max())

    @property
    def critical_rank(self) -> int:
        return int(np.argmax(self.clock))

    def compute_time(self, rank: int | None = None) -> float:
        """Total booked compute time on ``rank`` (default: critical rank)."""
        r = self.critical_rank if rank is None else self._check_rank(rank)
        return float(sum(t[r] for t in self.t_compute.values()))

    def comm_time(self, rank: int | None = None) -> float:
        """Non-overlapped comm+sync time: clock minus booked compute."""
        r = self.critical_rank if rank is None else self._check_rank(rank)
        return float(self.clock[r]) - self.compute_time(r)

    def total_words_sent(self, phase: str | None = None) -> float:
        if phase is None:
            return float(sum(w.sum() for w in self.words_sent.values()))
        return float(self.words_sent[phase].sum())

    def total_words_recv(self, phase: str | None = None) -> float:
        if phase is None:
            return float(sum(w.sum() for w in self.words_recv.values()))
        return float(self.words_recv[phase].sum())

    def words_per_rank(self, phase: str | None = None) -> np.ndarray:
        """Per-rank communication volume (sent + received)."""
        phases = PHASES if phase is None else (phase,)
        out = np.zeros(self.nranks)
        for p in phases:
            out += self.words_sent[p] + self.words_recv[p]
        return out

    def msgs_per_rank(self, phase: str | None = None) -> np.ndarray:
        phases = PHASES if phase is None else (phase,)
        out = np.zeros(self.nranks, dtype=np.int64)
        for p in phases:
            out += self.msgs_sent[p] + self.msgs_recv[p]
        return out
