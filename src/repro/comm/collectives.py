"""Tree-structured collectives built from simulator point-to-point events.

SuperLU_DIST implements its panel broadcasts as asynchronous binary-tree
broadcasts over the process row/column communicators; we model the same
shape with binomial trees. Because every hop is a real simulated message,
per-rank volume, message counts, and critical-path timing all fall out of
the point-to-point ledgers with no special-casing, and Σ sent = Σ received
holds by construction.

For untraced, topology-free simulations (the hot cost-only path) the
broadcast takes a *closed-form* shortcut: every hop of a binomial tree
over uniform links costs the same ``alpha + beta*words``, so the final
clocks and ledger increments can be computed directly from the tree shape
without routing each message through the simulator's queues. The shortcut
replays the exact per-event arithmetic in the exact event order, so clocks
and ledgers are bit-for-bit identical to the per-event path — tests assert
this equivalence.
"""

from __future__ import annotations

from repro.comm.simulator import Simulator

__all__ = ["bcast", "reduce_pairwise"]


def bcast(sim: Simulator, root: int, ranks: list[int], words: float) -> None:
    """Binomial-tree broadcast of ``words`` from ``root`` to ``ranks``.

    ``ranks`` is the participant list; ``root`` must be a member. Relay
    ranks forward only after they have received (enforced naturally by the
    simulator's arrival-time semantics). Untraced, topology-free runs take
    the closed-form ledger path; both paths book identical clocks and
    ledgers.
    """
    if root not in ranks:
        raise ValueError(f"root {root} not among participants {ranks}")
    if words < 0:
        raise ValueError("words must be non-negative")
    # Rotate so the root is participant 0; binomial order on indices.
    order = [root] + [r for r in ranks if r != root]
    if len(order) <= 1:
        return
    if sim.trace is None and sim.topology is None \
            and getattr(sim, "faults", None) is None \
            and len(set(order)) == len(order):
        _bcast_closed_form(sim, order, words)
    else:
        _bcast_events(sim, order, words)


def _bcast_events(sim: Simulator, order: list[int], words: float) -> None:
    """Per-event reference path: one simulated message per tree hop."""
    p = len(order)
    span = 1
    while span < p:
        for i in range(span):
            j = i + span
            if j < p:
                sim.send(order[i], order[j], words)
                sim.recv(order[j], order[i])
        span *= 2


def _bcast_closed_form(sim: Simulator, order: list[int], words: float) -> None:
    """Closed-form ledger path: book the whole tree without queue traffic.

    Every hop costs the same ``h = alpha + beta*words``, so the binomial
    schedule is replayed on local scalars — the same additions and maxes,
    in the same order, as ``_bcast_events`` issues through ``send``/
    ``recv`` — and the results are written back to the per-rank ledgers
    in one pass. Requires distinct participants, no trace, no topology.
    """
    p = len(order)
    clock = sim.clock
    nranks = sim.nranks
    for r in order:
        if not 0 <= r < nranks:
            raise ValueError(f"rank {r} out of range [0, {nranks})")
    m = sim.machine
    h = m.alpha + m.beta * words
    c = [clock[r] for r in order]
    nsends = [0] * p
    span = 1
    while span < p:
        for i in range(span):
            j = i + span
            if j < p:
                ci = c[i] + h
                c[i] = ci
                nsends[i] += 1
                if ci > c[j]:
                    c[j] = ci
        span *= 2
    ws = sim.words_sent[sim.phase]
    wr = sim.words_recv[sim.phase]
    ms = sim.msgs_sent[sim.phase]
    mr = sim.msgs_recv[sim.phase]
    for idx, r in enumerate(order):
        clock[r] = c[idx]
        n = nsends[idx]
        if n:
            # Repeated adds, not n*words: keeps the float accumulation
            # bit-identical to the per-event path (n <= log2 p, so cheap).
            for _ in range(n):
                ws[r] += words
            ms[r] += n
        if idx:
            wr[r] += words
            mr[r] += 1
    sim.event_counts["send"] += p - 1
    sim.event_counts["recv"] += p - 1


def reduce_pairwise(sim: Simulator, src: int, dst: int, words: float,
                    add_flops: float | None = None) -> None:
    """One hop of Algorithm 1's Ancestor-Reduction: ``dst += src``.

    The receiver pays the element-wise addition (``add_flops`` defaults to
    one flop per word, the cost of summing the two block copies).
    """
    if words < 0:
        raise ValueError("words must be non-negative")
    sim.send(src, dst, words)
    sim.recv(dst, src)
    flops = words if add_flops is None else add_flops
    sim.compute(dst, flops, "reduce_add")
