"""Tree-structured collectives built from simulator point-to-point events.

SuperLU_DIST implements its panel broadcasts as asynchronous binary-tree
broadcasts over the process row/column communicators; we model the same
shape with binomial trees. Because every hop is a real simulated message,
per-rank volume, message counts, and critical-path timing all fall out of
the point-to-point ledgers with no special-casing, and Σ sent = Σ received
holds by construction.
"""

from __future__ import annotations

from repro.comm.simulator import Simulator

__all__ = ["bcast", "reduce_pairwise"]


def bcast(sim: Simulator, root: int, ranks: list[int], words: float) -> None:
    """Binomial-tree broadcast of ``words`` from ``root`` to ``ranks``.

    ``ranks`` is the participant list; ``root`` must be a member. Relay
    ranks forward only after they have received (enforced naturally by the
    simulator's arrival-time semantics).
    """
    if root not in ranks:
        raise ValueError(f"root {root} not among participants {ranks}")
    if words < 0:
        raise ValueError("words must be non-negative")
    # Rotate so the root is participant 0; binomial order on indices.
    order = [root] + [r for r in ranks if r != root]
    p = len(order)
    span = 1
    while span < p:
        for i in range(span):
            j = i + span
            if j < p:
                sim.send(order[i], order[j], words)
                sim.recv(order[j], order[i])
        span *= 2


def reduce_pairwise(sim: Simulator, src: int, dst: int, words: float,
                    add_flops: float | None = None) -> None:
    """One hop of Algorithm 1's Ancestor-Reduction: ``dst += src``.

    The receiver pays the element-wise addition (``add_flops`` defaults to
    one flop per word, the cost of summing the two block copies).
    """
    sim.send(src, dst, words)
    sim.recv(dst, src)
    flops = words if add_flops is None else add_flops
    sim.compute(dst, flops, "reduce_add")
