"""Network topology models refining the α-β cost per (src, dst) pair.

The paper's footnote 1 warns that "the network topology and the
underlying MPI implementation may increase the asymptotic complexity" of
the flat model. These classes let the simulator charge distance-dependent
latency and bandwidth factors so that sensitivity studies can check the
conclusions are not artifacts of the uniform-network assumption:

* :class:`UniformTopology` — the default flat network (factors 1.0);
* :class:`DragonflyTopology` — Edison's Aries-like three-tier model:
  cheap within a node, nominal within an all-to-all group, a configurable
  penalty between groups;
* :class:`Torus3D` — hop-count (Manhattan, periodic) latency scaling of
  older torus machines, where rank placement matters most.

Ranks map to hardware in order: ``node = rank // ranks_per_node`` etc.,
matching how MPI typically fills nodes with consecutive ranks — which
means a z-layer (contiguous rank block) tends to be node-local, and
Ancestor-Reduction partners (``pxy`` apart) usually live on different
nodes, exactly as on the paper's testbed.
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_positive_int

__all__ = ["UniformTopology", "DragonflyTopology", "Torus3D"]


class UniformTopology:
    """Flat network: every pair costs the same (the default model)."""

    def latency_factor(self, src: int, dst: int) -> float:
        return 1.0

    def bandwidth_factor(self, src: int, dst: int) -> float:
        return 1.0


class DragonflyTopology:
    """Three-tier dragonfly: node / group / global.

    Parameters are multiplicative factors on α (latency) and 1/bandwidth
    (β). Defaults approximate Aries: shared-memory transport within a
    node, single-hop within a group, one optical hop between groups.
    """

    def __init__(self, ranks_per_node: int = 6, nodes_per_group: int = 64,
                 node_latency: float = 0.3, node_bandwidth: float = 0.5,
                 global_latency: float = 1.6, global_bandwidth: float = 1.3):
        self.ranks_per_node = check_positive_int(ranks_per_node,
                                                 "ranks_per_node")
        self.nodes_per_group = check_positive_int(nodes_per_group,
                                                  "nodes_per_group")
        for name, v in (("node_latency", node_latency),
                        ("node_bandwidth", node_bandwidth),
                        ("global_latency", global_latency),
                        ("global_bandwidth", global_bandwidth)):
            if v <= 0:
                raise ValueError(f"{name} must be positive")
        self.node_latency = node_latency
        self.node_bandwidth = node_bandwidth
        self.global_latency = global_latency
        self.global_bandwidth = global_bandwidth

    def _tier(self, src: int, dst: int) -> int:
        """0 = same node, 1 = same group, 2 = global."""
        ns, nd = src // self.ranks_per_node, dst // self.ranks_per_node
        if ns == nd:
            return 0
        if ns // self.nodes_per_group == nd // self.nodes_per_group:
            return 1
        return 2

    def latency_factor(self, src: int, dst: int) -> float:
        return (self.node_latency, 1.0, self.global_latency)[
            self._tier(src, dst)]

    def bandwidth_factor(self, src: int, dst: int) -> float:
        return (self.node_bandwidth, 1.0, self.global_bandwidth)[
            self._tier(src, dst)]


class Torus3D:
    """Periodic 3D torus: latency scales with Manhattan hop distance.

    Rank ``r`` sits at torus coordinate ``(r // (ny*nz)) % nx, ...`` in
    order; bandwidth is shared per hop with a mild per-hop factor.
    """

    def __init__(self, nx: int, ny: int, nz: int,
                 hop_latency: float = 0.35, hop_bandwidth: float = 0.08):
        self.shape = (check_positive_int(nx, "nx"),
                      check_positive_int(ny, "ny"),
                      check_positive_int(nz, "nz"))
        if hop_latency < 0 or hop_bandwidth < 0:
            raise ValueError("hop factors must be non-negative")
        self.hop_latency = hop_latency
        self.hop_bandwidth = hop_bandwidth

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))

    def coords(self, rank: int) -> tuple[int, int, int]:
        nx, ny, nz = self.shape
        rank %= self.size
        return (rank // (ny * nz), (rank // nz) % ny, rank % nz)

    def hops(self, src: int, dst: int) -> int:
        out = 0
        for a, b, extent in zip(self.coords(src), self.coords(dst),
                                self.shape):
            d = abs(a - b)
            out += min(d, extent - d)
        return out

    def latency_factor(self, src: int, dst: int) -> float:
        return 1.0 + self.hop_latency * self.hops(src, dst)

    def bandwidth_factor(self, src: int, dst: int) -> float:
        return 1.0 + self.hop_bandwidth * self.hops(src, dst)
