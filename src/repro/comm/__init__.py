"""Simulated distributed-memory runtime (the paper's Cray XC30 substitute).

The evaluation quantities of the paper — per-process communication volume,
message counts, per-process memory, and critical-path time split into
computation vs non-overlapped communication — are all *per-rank ledger*
quantities. This subpackage provides a deterministic simulator that executes
the factorization's real message/compute schedule against virtual ranks:

* :class:`repro.comm.Machine` — α-β-γ cost model (latency, inverse
  bandwidth, per-flop times), default-calibrated to an Edison-like node;
* :class:`repro.comm.Simulator` — per-rank clocks, message queues, and
  ledgers (words/messages sent and received, flops by kernel, memory
  watermark), with phase labels separating factorization traffic from
  ancestor-reduction traffic (Fig. 10's ``W_fact`` vs ``W_red``);
* :class:`repro.comm.ProcessGrid2D` / :class:`repro.comm.ProcessGrid3D` —
  the logical grids of Section II-E and Section III;
* tree-structured broadcast/reduce collectives built from point-to-point
  sends, so volume conservation (Σ sent = Σ received) holds by construction.
"""

from repro.comm.collectives import bcast, reduce_pairwise
from repro.comm.grid import ProcessGrid2D, ProcessGrid3D, near_square_grid
from repro.comm.machine import Machine
from repro.comm.simulator import CommError, LedgerDelta, Simulator
from repro.comm.topology import DragonflyTopology, Torus3D, UniformTopology
from repro.comm.volume import (
    BlockVolume,
    CompactVolume,
    DenseVolume,
    compact_enabled,
    volume_for,
    volume_kind,
)

__all__ = [
    "BlockVolume",
    "CommError",
    "CompactVolume",
    "DenseVolume",
    "DragonflyTopology",
    "LedgerDelta",
    "Machine",
    "ProcessGrid2D",
    "ProcessGrid3D",
    "Simulator",
    "Torus3D",
    "UniformTopology",
    "bcast",
    "compact_enabled",
    "near_square_grid",
    "reduce_pairwise",
    "volume_for",
    "volume_kind",
]
