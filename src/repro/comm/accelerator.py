"""Accelerator offload model (the paper's HALO companion, Section VII).

    "Our 'HALO' algorithm for accelerator offload can be seen as an
    instance of the 3D sparse LU algorithm … We plan to add HALO to the
    3D algorithm for hybrid clusters."

Each rank optionally owns an accelerator with its own clock. Offloading a
Schur-complement GEMM costs the host an enqueue overhead (kernel launch +
metadata) and the accelerator the PCIe transfer of its operands plus the
GEMM at the accelerator's flop rate; the accelerator runs asynchronously
until the host *syncs* (before factoring a panel whose blocks the pending
updates may target). Small updates stay on the host — HALO's defining
policy, and the reason it "works much better for matrices that have large
dense blocks" (Section VII): overhead amortizes only over big GEMMs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Accelerator"]


@dataclass(frozen=True)
class Accelerator:
    """Cost coefficients of one per-rank accelerator.

    Defaults approximate a K20x-era GPU per MPI rank (the HALO paper's
    hardware class): ~250 GF/s sustained DGEMM, ~6 GB/s effective PCIe,
    ~20 µs per offloaded update for launch + packing metadata.
    """

    gamma_accel: float = 4.0e-12     # s/flop on the accelerator (~250 GF/s)
    pcie_beta: float = 1.3e-9        # s/word host<->device
    offload_overhead: float = 2.0e-5  # s per offloaded block update (host)
    min_flops: float = 2.0e6         # offload threshold: smaller stays on host

    def __post_init__(self):
        for name in ("gamma_accel", "pcie_beta", "offload_overhead",
                     "min_flops"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def should_offload(self, flops: float) -> bool:
        return flops >= self.min_flops

    def device_time(self, flops: float, words: float) -> float:
        """Accelerator-side cost of one offloaded update."""
        return self.pcie_beta * words + self.gamma_accel * flops
