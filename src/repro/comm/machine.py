"""The α-β-γ machine cost model.

Defaults approximate one MPI rank of the paper's testbed: NERSC Edison
(Cray XC30, dual 12-core Ivy Bridge per node, Aries dragonfly), run with
4 OpenMP threads per MPI rank:

* ``alpha`` — MPI point-to-point latency, ~1.5 µs on Aries;
* ``beta`` — seconds per 8-byte word; Aries sustains ~8 GB/s per rank
  stream, i.e. ~1 ns/word;
* ``gamma_gemm`` — seconds per flop in large dense GEMM; 4 Ivy Bridge cores
  at ~9.6 GF/core peak reach ~70% on DGEMM, but SuperLU's Schur updates run
  on small irregular blocks at far lower efficiency, so the default
  corresponds to ~12 GF/s per rank;
* ``gamma_panel`` — per-flop cost of the less regular panel/diagonal
  kernels (TRSM/GETRF on skinny panels), slower than GEMM;
* ``gemm_overhead`` — fixed cost per Schur-complement block update: the
  pack/unpack and indirect-indexing scatter that SuperLU_DIST performs
  around each GEMM (Section II-E: "a lot of local indirect memory
  accesses").

The absolute values set the time scale only; every claim the benchmarks
check is about ratios and shapes, which are insensitive to moderate
recalibration. ``Machine.edison_like()`` is the pinned configuration used
by all paper-reproduction benches.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Machine"]


@dataclass(frozen=True)
class Machine:
    """Cost coefficients for the simulator (all in seconds / words / flops)."""

    alpha: float = 1.5e-6        # per-message latency
    beta: float = 1.0e-9         # per-word (8 B) transfer time
    gamma_gemm: float = 8.3e-11  # per-flop, Schur GEMM (~12 GF/s)
    gamma_panel: float = 2.5e-10 # per-flop, panel & diagonal kernels (~4 GF/s)
    gemm_overhead: float = 3.0e-6  # per block-update pack/scatter cost
    # Checkpoint/restart I/O (repro.resilience): per-rank fixed latency
    # and per-word cost of writing (or re-reading) resident state to
    # stable storage, plus the failure-detection + relaunch delay paid
    # once per restart. Burst-buffer-class defaults: ~0.5 ms seek, ~2 GB/s
    # per rank (4x the network beta), ~5 ms to detect and respawn.
    io_alpha: float = 5.0e-4       # per-checkpoint per-rank latency
    io_beta: float = 4.0e-9        # per-word checkpoint read/write time
    restart_latency: float = 5.0e-3  # detect-and-relaunch delay per restart

    def __post_init__(self):
        for name in ("alpha", "beta", "gamma_gemm", "gamma_panel",
                     "gemm_overhead", "io_alpha", "io_beta",
                     "restart_latency"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @classmethod
    def edison_like(cls) -> "Machine":
        """The pinned calibration used by the paper-reproduction benches."""
        return cls()

    @classmethod
    def zero_compute(cls) -> "Machine":
        """Communication-only machine: compute is free.

        Useful in tests that need communication totals isolated from
        computation, and for upper-bound strong-scaling studies.
        """
        return cls(gamma_gemm=0.0, gamma_panel=0.0, gemm_overhead=0.0)

    @classmethod
    def zero_comm(cls) -> "Machine":
        """Compute-only machine: communication is free (PRAM-style bound)."""
        return cls(alpha=0.0, beta=0.0)
