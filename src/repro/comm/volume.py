"""The block-volume model: one place that prices block messages/storage.

Historically every layer that charged a message or a block of storage did
its own ``rows * cols`` arithmetic — panel broadcasts in
:mod:`repro.plan.backends`, ancestor reductions in :mod:`repro.plan.build`,
replica accounting in :mod:`repro.lu3d.replication`, static factor storage
in :mod:`repro.lu2d.storage`. That dense convention is exactly what
SpComm3D identifies as the flaw of 3D sparse kernels built on dense
buffers: ancestor blocks of the filled pattern are mostly structural
zeros, so dense word counts overstate the communication volume the paper's
Fig. 10 actually measures.

This module centralizes the pricing decision behind one tiny protocol:

``BlockVolume.cap(i, j, dense_words)``
    Given a block coordinate and the historical dense word count for the
    payload, return the words actually shipped/stored.

Two implementations:

* :class:`DenseVolume` — the identity; ``cap`` returns ``dense_words``
  unchanged, so dense-mode plans, ledgers, and goldens are *structurally*
  bit-identical to the pre-refactor code.
* :class:`CompactVolume` — ``min(dense_words, 1.5 * nnz(i, j))`` using the
  per-block fill-in tables of :mod:`repro.symbolic.blocknnz`. The 1.5
  words/entry model is an 8-byte value plus a 4-byte int32 position index
  per structural nonzero — the same format the shared-memory transport
  ships (:class:`repro.parallel.shm.PackedBlock`). Triangular diagonal
  payloads (``dense_words < s*s``) are priced off the triangle's own nnz.

Because compact pricing is a per-block ``min`` against the dense price,
``compact <= dense`` holds per message, hence per phase and in total — the
invariant the comm-volume smoke gate asserts.

Mode selection: ``FactorOptions.compact_comm`` (default off), overridden
either way by the ``REPRO_COMPACT`` environment variable (on: ``1``,
``true``, ``on``, ``yes``; off: ``0``, ``false``, ``off``, ``no``) — the
same contract as ``REPRO_COMPILE`` / ``REPRO_SHM``.
"""

from __future__ import annotations

import os
from typing import Protocol

__all__ = [
    "BlockVolume",
    "CompactVolume",
    "DenseVolume",
    "WORDS_PER_ENTRY",
    "compact_enabled",
    "volume_for",
    "volume_kind",
]

#: Words shipped per structural nonzero in compact mode: one 8-byte value
#: plus one 4-byte int32 flat index, in 8-byte words.
WORDS_PER_ENTRY = 1.5

_ON_VALUES = ("1", "true", "on", "yes")
_OFF_VALUES = ("0", "false", "off", "no")


class BlockVolume(Protocol):
    """Prices the payload of block ``(i, j)`` given its dense word count."""

    kind: str

    def cap(self, i: int, j: int, dense_words: float) -> float:
        """Words shipped/stored for block ``(i, j)``."""
        ...


class DenseVolume:
    """Dense pricing: the identity on the historical ``rows * cols`` words."""

    kind = "dense"

    def cap(self, i: int, j: int, dense_words: float) -> float:
        return dense_words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DenseVolume()"


class CompactVolume:
    """Sparsity-aware pricing off the filled pattern's per-block nnz.

    ``cap`` never exceeds the dense price (a dense-full block gains
    nothing from indices, so we fall back to shipping it dense), and a
    triangular diagonal payload — recognized by ``dense_words`` strictly
    below the full ``s * s`` tile — is priced off the triangle's nnz.
    """

    kind = "compact"

    def __init__(self, sf):
        # Imported lazily: repro.symbolic pulls the ordering/sparse stack,
        # which must not become an import-time dependency of repro.comm.
        from repro.symbolic.blocknnz import block_nnz_tables

        self.sf = sf
        self.tables = block_nnz_tables(sf)

    def cap(self, i: int, j: int, dense_words: float) -> float:
        if i == j:
            s = self.sf.layout.block_size(i)
            if dense_words < s * s:
                # Triangular payload (diag bcast / packed tri storage).
                nnz = int(self.tables.tri[i])
            else:
                nnz = self.tables.block_nnz(i, i)
        else:
            nnz = self.tables.block_nnz(i, j)
        return min(float(dense_words), WORDS_PER_ENTRY * nnz)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompactVolume(nb={self.sf.nb})"


def compact_enabled(options) -> bool:
    """Resolve the compact-comm toggle: env override, then options."""
    env = os.environ.get("REPRO_COMPACT", "").strip().lower()
    if env in _ON_VALUES:
        return True
    if env in _OFF_VALUES:
        return False
    return bool(options is not None and
                getattr(options, "compact_comm", False))


def volume_kind(options) -> str:
    """``"compact"`` or ``"dense"`` for the resolved mode."""
    return "compact" if compact_enabled(options) else "dense"


def volume_for(sf, options) -> BlockVolume:
    """The :class:`BlockVolume` implied by ``options`` (+ env override)."""
    return CompactVolume(sf) if compact_enabled(options) else DenseVolume()
