"""Logical 2D and 3D process grids (Section II-E and Section III).

Rank numbering: the 3D grid of shape ``Px × Py × Pz`` assigns global rank
``pz * (Px*Py) + px * Py + py`` — each z-layer is a contiguous block of
``Pxy`` ranks, so layer ``g``'s 2D grid is ranks ``[g*Pxy, (g+1)*Pxy)``.
Within a layer, block ``(i, j)`` of the block-cyclic distribution is owned
by process-grid coordinate ``(i mod Px, j mod Py)``, exactly SuperLU_DIST's
supernode-level 2D block-cyclic scheme (Fig. 3a).
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_positive_int, check_power_of_two

__all__ = ["ProcessGrid2D", "ProcessGrid3D", "near_square_grid"]


def near_square_grid(p: int) -> tuple[int, int]:
    """Factor ``p`` into the most-square ``(Px, Py)`` with ``Px <= Py``.

    This mirrors how SuperLU_DIST users pick 2D grids (``nprow <= npcol``
    is the common recommendation).
    """
    p = check_positive_int(p, "p")
    px = int(p ** 0.5)
    while p % px != 0:
        px -= 1
    return px, p // px


class ProcessGrid2D:
    """A ``Px × Py`` grid mapped onto global ranks ``base .. base + Px*Py``."""

    def __init__(self, px: int, py: int, base: int = 0):
        self.px = check_positive_int(px, "px")
        self.py = check_positive_int(py, "py")
        self.base = int(base)
        self.size = self.px * self.py
        # Memoized lookup tables: owner/row_ranks/col_ranks sit in the
        # drivers' innermost loops, so they must not recompute per call.
        # The cached lists are shared — callers must not mutate them.
        self._ranks = [[self.base + pi * self.py + pj
                        for pj in range(self.py)] for pi in range(self.px)]
        self._row_ranks = [list(row) for row in self._ranks]
        self._col_ranks = [[self._ranks[pi][pj] for pi in range(self.px)]
                           for pj in range(self.py)]

    def rank(self, pi: int, pj: int) -> int:
        """Global rank of grid coordinate ``(pi, pj)``."""
        if not (0 <= pi < self.px and 0 <= pj < self.py):
            raise ValueError(f"coordinate ({pi}, {pj}) outside {self.px}x{self.py}")
        return self._ranks[pi][pj]

    def coords(self, rank: int) -> tuple[int, int]:
        local = rank - self.base
        if not 0 <= local < self.size:
            raise ValueError(f"rank {rank} not in this grid")
        return divmod(local, self.py)

    def owner(self, i: int, j: int) -> int:
        """Rank owning block ``(i, j)`` under 2D block-cyclic distribution."""
        return self._ranks[i % self.px][j % self.py]

    def owner_map(self, rows, cols) -> np.ndarray:
        """Vectorized :meth:`owner`: ranks of the ``rows × cols`` block set.

        Returns a ``(len(rows), len(cols))`` int array with
        ``out[a, b] == owner(rows[a], cols[b])`` — the scatter map the
        batched Schur kernel uses to book a whole panel of updates at once.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        return (self.base + (rows % self.px)[:, None] * self.py
                + (cols % self.py)[None, :])

    def owner_pairs(self, rows, cols) -> np.ndarray:
        """Elementwise :meth:`owner`: ``out[a] == owner(rows[a], cols[a])``.

        The pairwise companion of :meth:`owner_map` — used by the batched
        Ancestor-Reduction to map a whole level's ``(i, j)`` block list to
        source/destination ranks in one shot.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        return self.base + (rows % self.px) * self.py + (cols % self.py)

    def owner_coords(self, i: int, j: int) -> tuple[int, int]:
        return (i % self.px, j % self.py)

    def row_ranks(self, i: int) -> list[int]:
        """Ranks of the process row owning block-row ``i`` (paper's Px(k)).

        The returned list is memoized and shared; do not mutate it.
        """
        return self._row_ranks[i % self.px]

    def col_ranks(self, j: int) -> list[int]:
        """Ranks of the process column owning block-column ``j``.

        The returned list is memoized and shared; do not mutate it.
        """
        return self._col_ranks[j % self.py]

    def all_ranks(self) -> list[int]:
        return list(range(self.base, self.base + self.size))

    def __repr__(self) -> str:  # pragma: no cover
        return f"ProcessGrid2D({self.px}x{self.py}, base={self.base})"


class ProcessGrid3D:
    """A ``Px × Py × Pz`` grid: ``Pz`` stacked 2D layers.

    ``Pz`` must be a power of two (Algorithm 1's pairwise reduction tree);
    ``Pz = 1`` degenerates to the baseline 2D configuration.
    """

    def __init__(self, px: int, py: int, pz: int):
        self.px = check_positive_int(px, "px")
        self.py = check_positive_int(py, "py")
        self.pz = check_power_of_two(pz, "pz")
        self.pxy = self.px * self.py
        self.size = self.pxy * self.pz
        self._layers = [ProcessGrid2D(px, py, base=g * self.pxy)
                        for g in range(self.pz)]

    @classmethod
    def from_total(cls, p: int, pz: int) -> "ProcessGrid3D":
        """Split ``p`` total ranks into ``pz`` near-square 2D layers."""
        pz = check_power_of_two(pz, "pz")
        p = check_positive_int(p, "p")
        if p % pz != 0:
            raise ValueError(f"total ranks {p} not divisible by pz={pz}")
        px, py = near_square_grid(p // pz)
        return cls(px, py, pz)

    def layer(self, g: int) -> ProcessGrid2D:
        """The 2D grid of z-layer ``g``."""
        if not 0 <= g < self.pz:
            raise ValueError(f"layer {g} out of range [0, {self.pz})")
        return self._layers[g]

    def zmate(self, rank: int, g_to: int) -> int:
        """The rank at the same (px, py) coordinate in layer ``g_to``.

        Ancestor-Reduction communicates along the z axis between these
        pairs (Algorithm 1: "the same (x, y) coordinate in both sender and
        receiver grids").
        """
        g_from, local = divmod(rank, self.pxy)
        if not 0 <= g_from < self.pz:
            raise ValueError(f"rank {rank} out of range")
        return self.layer(g_to).base + local

    def all_ranks(self) -> list[int]:
        return list(range(self.size))

    def __repr__(self) -> str:  # pragma: no cover
        return f"ProcessGrid3D({self.px}x{self.py}x{self.pz})"
