"""Event tracing: per-rank timelines of the simulated execution.

Attach a :class:`Trace` to a :class:`repro.comm.Simulator` and every
compute interval, message transfer, and receive wait is recorded as a
``TraceEvent``. The trace answers the questions the paper's Fig. 9
discussion raises qualitatively — *where* does the critical rank spend its
time, how idle are the other layers while grid-0 factors the ancestors —
and exports a text Gantt chart plus per-rank utilization statistics.

Tracing is opt-in and adds nothing to untraced runs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.comm.events import PHASES, TRACE_KINDS

__all__ = ["Trace", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    """One interval on one rank's timeline."""

    rank: int
    start: float
    end: float
    kind: str        # one of repro.comm.events.TRACE_KINDS
    phase: str       # one of repro.comm.events.PHASES
    words: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """Event container with aggregation and rendering helpers."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record(self, rank: int, start: float, end: float, kind: str,
               phase: str, words: float = 0.0) -> None:
        if end < start:
            raise ValueError("event ends before it starts")
        # A typo'd kind/phase used to vanish silently from aggregations;
        # the vocabularies are closed (repro.comm.events), so enforce them.
        if kind not in TRACE_KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}; "
                             f"expected one of {TRACE_KINDS}")
        if phase not in PHASES:
            raise ValueError(f"unknown trace event phase {phase!r}; "
                             f"expected one of {PHASES}")
        if end > start or words:
            self.events.append(TraceEvent(rank, start, end, kind, phase,
                                          words))

    # -- aggregation ---------------------------------------------------------

    def by_rank(self) -> dict[int, list[TraceEvent]]:
        out: dict[int, list[TraceEvent]] = defaultdict(list)
        for ev in self.events:
            out[ev.rank].append(ev)
        return dict(out)

    def busy_time(self, rank: int, kinds: tuple[str, ...] | None = None
                  ) -> float:
        return sum(ev.duration for ev in self.events
                   if ev.rank == rank and (kinds is None or ev.kind in kinds))

    def utilization(self, nranks: int, horizon: float | None = None
                    ) -> np.ndarray:
        """Fraction of the makespan each rank spends in *compute* events."""
        if horizon is None:
            horizon = max((ev.end for ev in self.events), default=0.0)
        util = np.zeros(nranks)
        if horizon <= 0:
            return util
        for ev in self.events:
            if ev.kind not in ("send", "recv_wait", "offload"):
                util[ev.rank] += ev.duration
        return util / horizon

    def time_by_kind(self) -> dict[str, float]:
        out: dict[str, float] = defaultdict(float)
        for ev in self.events:
            out[ev.kind] += ev.duration
        return dict(out)

    def critical_events(self, rank: int) -> list[TraceEvent]:
        """Rank's events in time order (its personal timeline)."""
        return sorted((ev for ev in self.events if ev.rank == rank),
                      key=lambda ev: ev.start)

    # -- rendering -------------------------------------------------------------

    _GLYPHS = {"diag": "D", "panel": "P", "schur": "S", "reduce_add": "R",
               "solve": "V", "send": ">", "recv_wait": ".", "offload": "O"}

    def gantt(self, nranks: int, width: int = 72) -> str:
        """Text Gantt chart: one row per rank, one glyph per time bucket.

        Each bucket shows the kind that dominated it; idle buckets are
        blank. Meant for eyeballing schedules in tests and notebooks, not
        for precision.
        """
        horizon = max((ev.end for ev in self.events), default=0.0)
        if horizon <= 0:
            return "\n".join(f"r{r:<3d}|" for r in range(nranks))
        dt = horizon / width
        rows = []
        for r in range(nranks):
            buckets = [defaultdict(float) for _ in range(width)]
            for ev in self.events:
                if ev.rank != r or ev.duration == 0:
                    continue
                b0 = min(int(ev.start / dt), width - 1)
                b1 = min(int(np.ceil(ev.end / dt)), width)
                for b in range(b0, b1):
                    lo = max(ev.start, b * dt)
                    hi = min(ev.end, (b + 1) * dt)
                    if hi > lo:
                        buckets[b][ev.kind] += hi - lo
                if ev.duration == 0 and ev.words:
                    buckets[b0][ev.kind] += dt * 1e-9
            line = "".join(
                self._GLYPHS.get(max(b, key=b.get), "?") if b else " "
                for b in buckets)
            rows.append(f"r{r:<3d}|{line}|")
        return "\n".join(rows)

    def to_rows(self) -> list[tuple]:
        """CSV-ready rows (rank, start, end, kind, phase, words)."""
        return [(ev.rank, ev.start, ev.end, ev.kind, ev.phase, ev.words)
                for ev in sorted(self.events, key=lambda e: (e.start, e.rank))]
