"""Plain-text table rendering for the benchmark harnesses.

The benches print paper-style tables to stdout (pytest-benchmark captures
and shows them with ``-s``); this module keeps the formatting in one place.
"""

from __future__ import annotations

__all__ = ["format_table", "format_si", "format_kernel_counters",
           "format_parallel_stats", "format_resilience_stats"]


def format_si(x: float, digits: int = 3) -> str:
    """Engineering-notation formatting: 1.23e+04 -> '12.3K'."""
    if x == 0:
        return "0"
    units = [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")]
    ax = abs(x)
    for scale, suffix in units:
        if ax >= scale:
            return f"{x / scale:.{digits}g}{suffix}"
    return f"{x:.{digits}g}"


def format_table(headers: list[str], rows: list[list], title: str = "",
                 floatfmt: str = ".3g") -> str:
    """Render an aligned ASCII table.

    Cells may be any type; floats are formatted with ``floatfmt``.
    """
    def render(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:{floatfmt}}"
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_kernel_counters(sim, result, title: str = "kernel counters") -> str:
    """Summarize the batched-kernel perf counters of a factorization run.

    ``sim`` is the :class:`repro.comm.Simulator` that executed the run and
    ``result`` a ``Factor2DResult`` or ``Factor3DResult``. Shows the
    batched-GEMM count and fill ratio (how much of each gathered
    ``W = L @ U`` product landed in a destination block) next to the
    simulator's per-kind event counts, so a bench can see at a glance how
    much of the Schur work went through the batched path and what event
    mix the run produced.
    """
    rows: list[list] = [
        ["batched panel GEMMs", getattr(result, "n_batched_gemms", 0)],
        ["schur block updates", getattr(result, "schur_block_updates", 0)],
        ["batch fill ratio", float(getattr(result, "batch_fill_ratio", 0.0))],
    ]
    for kind in sorted(sim.event_counts):
        rows.append([f"events[{kind}]", int(sim.event_counts[kind])])
    return format_table(["counter", "value"], rows, title=title)


def format_parallel_stats(result, title: str = "parallel execution") -> str:
    """Per-level worker utilization of a fanned-out 3D factorization.

    ``result`` is a ``Factor3DResult``; its ``parallel_stats`` holds one
    :class:`repro.parallel.LevelStats` per level that actually fanned out
    (levels with a single runnable grid stay serial and do not appear),
    plus a :class:`repro.parallel.ParallelFallback` when workers were
    requested but the run stayed serial — that reason is printed here so
    the decision is never silent. Utilization is summed task seconds over
    ``workers x wall``; the serial fraction is the Amdahl share of
    fork/export + merge/import time. The transport column says how each
    level's replica blocks reached the workers (``shm`` descriptors vs
    ``pickle`` copies vs ``none`` for cost-only) and ``shipped`` how many
    payload bytes were serialized for the fan-out.
    """
    stats = getattr(result, "parallel_stats", None) or []
    levels = [st for st in stats if hasattr(st, "utilization")]
    fallbacks = [st for st in stats if hasattr(st, "reason")]
    out: list[str] = []
    if levels:
        rows = [[st.level, st.n_tasks, st.n_workers, st.backend,
                 getattr(st, "transport", "none"),
                 format_si(float(getattr(st, "bytes_shipped", 0.0))) + "B",
                 st.wall_seconds * 1e3, st.task_seconds * 1e3,
                 st.utilization, st.serial_fraction]
                for st in levels]
        out.append(format_table(
            ["level", "grids", "workers", "backend", "transport",
             "shipped", "wall [ms]", "task [ms]", "util", "serial frac"],
            rows, title=title))
    else:
        out.append(title)
    for fb in fallbacks:
        out.append(f"serial fallback ({fb.requested_workers} workers "
                   f"requested, backend={fb.backend}): {fb.reason}")
    if not levels and not fallbacks:
        out.append("(serial run: no levels fanned out)")
    return "\n".join(out)


def format_resilience_stats(stats, title: str = "resilience") -> str:
    """Overhead attribution of a resilient factorization run.

    ``stats`` is a :class:`repro.resilience.ResilienceStats` (found on
    ``Factor3DResult.resilience`` or ``Factor2DResult.extras['resilience']``).
    Times are aggregate rank-seconds, so the overhead percentage compares
    like with like: total fault-tolerance overhead (lost work + recovery
    replay + checkpoint/recovery I/O + downtime) over total booked compute.
    """
    rows: list[list] = [
        ["recovery policy", stats.policy],
        ["checkpoint interval [tasks]",
         stats.checkpoint_every if stats.checkpoint_every else "off"],
        ["faults planned", int(stats.n_faults)],
        ["faults fired", int(stats.faults_fired)],
        ["faults survived", int(stats.faults_survived)],
        ["grid crashes", int(stats.crashes)],
        ["checkpoints taken", int(stats.checkpoints_taken)],
        ["checkpoint volume [words]", format_si(stats.checkpoint_words)],
        ["checkpoint I/O [s]", float(stats.checkpoint_io_seconds)],
        ["lost work [s]", float(stats.lost_work_seconds)],
        ["recovery compute [s]", float(stats.recovery_compute_seconds)],
        ["recovery volume [words]", format_si(stats.recovery_words)],
        ["recovery I/O [s]", float(stats.recovery_io_seconds)],
        ["downtime [s]", float(stats.downtime_seconds)],
        ["total overhead [s]", float(stats.overhead_seconds)],
        ["overhead [% of compute]", float(stats.overhead_pct)],
    ]
    out = [format_table(["counter", "value"], rows, title=title)]
    for note in stats.notes:
        out.append(f"note: {note}")
    return "\n".join(out)
