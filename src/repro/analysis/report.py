"""Plain-text table rendering for the benchmark harnesses.

The benches print paper-style tables to stdout (pytest-benchmark captures
and shows them with ``-s``); this module keeps the formatting in one place.
"""

from __future__ import annotations

__all__ = ["format_table", "format_si"]


def format_si(x: float, digits: int = 3) -> str:
    """Engineering-notation formatting: 1.23e+04 -> '12.3K'."""
    if x == 0:
        return "0"
    units = [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")]
    ax = abs(x)
    for scale, suffix in units:
        if ax >= scale:
            return f"{x / scale:.{digits}g}{suffix}"
    return f"{x:.{digits}g}"


def format_table(headers: list[str], rows: list[list], title: str = "",
                 floatfmt: str = ".3g") -> str:
    """Render an aligned ASCII table.

    Cells may be any type; floats are formatted with ``floatfmt``.
    """
    def render(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:{floatfmt}}"
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)
