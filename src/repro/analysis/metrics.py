"""Condensed per-run metrics, aligned with the paper's reported quantities.

Conventions (documented once, used by every benchmark):

* **Critical path** quantities come from the rank with the maximum clock.
* ``t_scu`` is the Schur-complement-update compute time booked on that rank
  (what Fig. 9 stacks as ``T_scu``); ``t_comm`` is everything on its clock
  that is not booked compute — non-overlapped communication and
  synchronization (Fig. 9's ``T_comm``).
* **Per-process communication volume** is the *maximum over ranks* of
  words sent + received (Fig. 10 reports the critical-path process),
  split by phase into factorization (``w_fact``) and ancestor-reduction
  (``w_red``) traffic.
* **Memory** is the maximum per-rank peak in words (Fig. 11 reports the
  relative overhead of this quantity vs the 2D baseline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.simulator import Simulator

__all__ = ["FactorizationMetrics"]


@dataclass(frozen=True)
class FactorizationMetrics:
    """Immutable summary of one factorization simulation."""

    nranks: int
    makespan: float            # seconds, critical path
    t_scu: float               # Schur-update time on the critical rank
    t_panel: float             # diag+panel compute time on the critical rank
    t_comm: float              # non-overlapped comm+sync on the critical rank
    w_fact_max: float          # max per-rank factorization words
    w_red_max: float           # max per-rank reduction words
    w_fact_mean: float
    w_red_mean: float
    msgs_max: int              # max per-rank message count (latency proxy)
    mem_peak_max: float        # max per-rank peak memory (words)
    mem_peak_total: float      # aggregate peak memory (words)
    mem_resident_total: float  # aggregate post-run resident memory (words):
                               # static factor + replica storage, transient
                               # buffers freed
    total_flops: float

    @classmethod
    def from_simulator(cls, sim: Simulator) -> "FactorizationMetrics":
        r = sim.critical_rank
        t_scu = float(sim.t_compute["schur"][r] + sim.t_compute["reduce_add"][r])
        t_panel = float(sim.t_compute["diag"][r] + sim.t_compute["panel"][r]
                        + sim.t_compute["solve"][r])
        w_fact = sim.words_per_rank("fact")
        w_red = sim.words_per_rank("red")
        return cls(
            nranks=sim.nranks,
            makespan=sim.makespan,
            t_scu=t_scu,
            t_panel=t_panel,
            t_comm=sim.makespan - t_scu - t_panel,
            w_fact_max=float(w_fact.max()),
            w_red_max=float(w_red.max()),
            w_fact_mean=float(w_fact.mean()),
            w_red_mean=float(w_red.mean()),
            msgs_max=int(sim.msgs_per_rank().max()),
            mem_peak_max=float(sim.mem_peak.max()),
            mem_peak_total=float(sim.mem_peak.sum()),
            mem_resident_total=float(sim.mem_current.sum()),
            total_flops=float(sum(f.sum() for f in sim.flops.values())),
        )

    # -- derived -----------------------------------------------------------

    @property
    def w_total_max(self) -> float:
        """Fig. 10's W_total: critical-path per-process volume."""
        return self.w_fact_max + self.w_red_max

    @property
    def flop_rate(self) -> float:
        """Aggregate achieved flop/s over the critical path (Fig. 12)."""
        return self.total_flops / self.makespan if self.makespan > 0 else 0.0

    def speedup_over(self, baseline: "FactorizationMetrics") -> float:
        return baseline.makespan / self.makespan

    def memory_overhead_over(self, baseline: "FactorizationMetrics") -> float:
        """Fig. 11's relative overhead, in percent."""
        if baseline.mem_peak_max == 0:
            raise ValueError("baseline has zero memory")
        return 100.0 * (self.mem_peak_max / baseline.mem_peak_max - 1.0)

    def comm_reduction_over(self, baseline: "FactorizationMetrics") -> float:
        if self.w_total_max == 0:
            return np.inf
        return baseline.w_total_max / self.w_total_max
