"""Critical-path and volume instrumentation over execution plans.

The plan layer (:mod:`repro.plan`) makes the schedule a data structure, so
the paper's Section IV latency analysis can be *measured* instead of
re-derived: :class:`PlanStats` walks a plan's dependency DAG once and
reports the longest α-β-γ chain — the modeled lower bound a run cannot
beat regardless of overlap — next to per-task-kind volume totals.

Cost model (the simulator's own):

* communication: ``alpha`` per message + ``beta`` per word, summed over a
  task's broadcasts (binomial tree: ``|ranks| - 1`` hops, plus the routing
  hop when the owner enters through the communicator's entry rank) or
  reduction transfers;
* compute: ``gamma_gemm`` per flop for Schur updates and reduce-adds,
  ``gamma_panel`` for diagonal/panel kernels, plus ``gemm_overhead`` per
  block update a Schur task performs (1 when batched, ``n_pairs`` when
  not).

Because tids are assigned in emission order (``dep < tid``), one forward
pass over ``iter_tasks()`` is a topological traversal — no sort needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm.machine import Machine
from repro.plan.tasks import FusedTask, SchurUpdate, task_comm, task_flops

__all__ = ["PlanStats", "task_cost", "format_compile_summary",
           "format_plan_summary"]

#: Compute kinds priced at the GEMM rate; everything else at the panel
#: rate (mirrors ``Simulator.compute``).
_GEMM_KINDS = ("schur", "reduce_add")


def task_cost(task, machine: Machine) -> float:
    """Modeled seconds of one task: α·msgs + β·words + γ·flops (+overhead).

    A fused task costs the sum of its members — fusion removes dispatch
    overhead on the host, not modeled machine work.
    """
    if isinstance(task, FusedTask):
        return sum(task_cost(m, machine) for m in task.members)
    msgs, words = task_comm(task)
    kind, flops = task_flops(task)
    cost = machine.alpha * msgs + machine.beta * words
    if flops:
        gamma = machine.gamma_gemm if kind in _GEMM_KINDS \
            else machine.gamma_panel
        cost += flops * gamma
    if isinstance(task, SchurUpdate) and task.n_pairs:
        cost += machine.gemm_overhead * (1 if task.batched else task.n_pairs)
    return cost


@dataclass
class PlanStats:
    """Aggregate and critical-path statistics of one execution plan."""

    n_tasks: int = 0
    task_counts: dict = field(default_factory=dict)   # kind -> count
    flops_by_kind: dict = field(default_factory=dict)  # compute kind -> flops
    comm_msgs: int = 0
    comm_words: float = 0.0
    total_cost: float = 0.0           # sum of every task's modeled seconds
    critical_path_tasks: int = 0      # tasks on the longest dependency chain
    critical_path_cost: float = 0.0   # modeled seconds along that chain

    @property
    def total_flops(self) -> float:
        return sum(self.flops_by_kind.values())

    @property
    def parallelism(self) -> float:
        """Average DAG parallelism: total work over critical-path work."""
        return self.total_cost / self.critical_path_cost \
            if self.critical_path_cost > 0 else 0.0

    @classmethod
    def from_plan(cls, plan, machine: Machine | None = None) -> "PlanStats":
        """Walk ``plan`` (a :class:`~repro.plan.tasks.GridPlan` or
        :class:`~repro.plan.tasks.Plan3D`) once and fill every field."""
        machine = machine or Machine.edison_like()
        stats = cls()
        # tid -> (finish time, tasks on the chain ending here)
        finish: dict[int, tuple[float, int]] = {}
        best = (0.0, 0)
        for task in plan.iter_tasks():
            stats.n_tasks += 1
            stats.task_counts[task.kind] = \
                stats.task_counts.get(task.kind, 0) + 1
            msgs, words = task_comm(task)
            stats.comm_msgs += msgs
            stats.comm_words += words
            ckind, flops = task_flops(task)
            if flops:
                stats.flops_by_kind[ckind] = \
                    stats.flops_by_kind.get(ckind, 0.0) + flops
            cost = task_cost(task, machine)
            stats.total_cost += cost
            start, depth = 0.0, 0
            for d in task.deps:
                f = finish.get(d)
                if f is not None and f[0] > start:
                    start, depth = f
            entry = (start + cost, depth + 1)
            finish[task.tid] = entry
            if entry[0] > best[0]:
                best = entry
        stats.critical_path_cost, stats.critical_path_tasks = best
        return stats


def format_plan_summary(stats: PlanStats,
                        title: str = "execution plan") -> str:
    """Render a PlanStats as the aligned table the CLI prints."""
    from repro.analysis.report import format_si, format_table

    rows = [[kind, stats.task_counts[kind],
             format_si(stats.flops_by_kind.get(_FLOP_KIND.get(kind, ""),
                                               0.0))]
            for kind in sorted(stats.task_counts)]
    table = format_table(["task kind", "count", "flops"], rows, title=title)
    lines = [
        table,
        f"total: {stats.n_tasks} tasks, {format_si(stats.total_flops)} "
        f"flops, {stats.comm_msgs} messages, "
        f"{format_si(stats.comm_words)} words",
        f"critical path: {stats.critical_path_tasks} tasks, "
        f"{stats.critical_path_cost * 1e3:.3f} ms modeled "
        f"(alpha-beta-gamma), avg parallelism {stats.parallelism:.2f}x",
    ]
    return "\n".join(lines)


def format_compile_summary(compiled,
                           title: str = "plan compilation") -> str:
    """Render a :class:`repro.plan.CompiledPlan`'s fusion statistics.

    Shows the interpreter-dispatch reduction (the quantity the compile
    pass optimizes) next to the fusion ratio — how many original tasks
    each surviving dispatch covers on average.
    """
    from repro.analysis.report import format_table

    st = compiled.stats
    rows: list[list] = [
        ["tasks before", int(st.n_tasks_before)],
        ["tasks after", int(st.n_tasks_after)],
        ["fused runs", int(st.n_fused)],
        ["tasks absorbed", int(st.n_members)],
        ["vector-unsafe runs", int(st.n_vector_unsafe)],
        ["dispatch reduction", float(st.dispatch_reduction)],
        ["fusion ratio", float(st.fusion_ratio)],
    ]
    return format_table(["counter", "value"], rows, title=title)


#: Which compute-kind ledger a task kind's flops land in.
_FLOP_KIND = {"panel_factor": "diag", "panel_bcast": "panel",
              "schur_update": "schur", "replicated_factor": "schur",
              "ancestor_reduce": "reduce_add"}
