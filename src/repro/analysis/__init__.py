"""Measurement aggregation and reporting.

:class:`repro.analysis.FactorizationMetrics` condenses a finished
simulation into exactly the quantities the paper plots: critical-path time
split into ``T_scu`` and ``T_comm`` (Fig. 9), per-process communication
volume split into ``W_fact`` and ``W_red`` (Fig. 10), per-process peak
memory (Fig. 11), and achieved flop rate (Fig. 12).
:mod:`repro.analysis.report` renders aligned text tables for the
benchmark harnesses.
"""

from repro.analysis.metrics import FactorizationMetrics
from repro.analysis.planstats import (
    PlanStats,
    format_compile_summary,
    format_plan_summary,
    task_cost,
)
from repro.analysis.report import (
    format_kernel_counters,
    format_parallel_stats,
    format_resilience_stats,
    format_table,
)
from repro.analysis.trace import Trace, TraceEvent

__all__ = ["FactorizationMetrics", "PlanStats", "Trace", "TraceEvent",
           "format_table", "format_kernel_counters", "format_parallel_stats",
           "format_resilience_stats", "format_compile_summary",
           "format_plan_summary", "task_cost"]
