"""Baseline 2D sparse LU: a SuperLU_DIST-like right-looking supernodal solver.

This is the algorithm of Section II-E, reproduced kernel for kernel on the
simulated runtime:

1. *Diagonal factorization* — unpivoted dense LU of the supernode's diagonal
   block with GESP-style perturbation of tiny pivots (SuperLU_DIST's static
   pivoting);
2. *Diagonal broadcast* — ``L_kk`` along the process row, ``U_kk`` along the
   process column;
3. *Panel solve* — triangular solves producing the L and U panels;
4. *Panel broadcast* — L-panel blocks along process rows, U-panel blocks
   along process columns;
5. *Schur-complement update* — by default one gathered panel GEMM per
   supernode with a scatter-subtract into the destination blocks
   (:mod:`repro.lu2d.batched`); ``FactorOptions(batched_schur=False)``
   falls back to one dense GEMM per (i, j) block pair, owner-only.

A lookahead window pipelines the panel work of upcoming independent
supernodes with the current Schur update (Section II-F), which is what lets
communication hide behind computation in the simulator's timing model.
"""

from repro.lu2d.batched import (batched_schur_update, batched_syrk_update,
                                gather_panels, panel_offsets)
from repro.lu2d.factor2d import Factor2DResult, FactorOptions, factor_2d, factor_nodes_2d
from repro.lu2d.kernels import getrf_nopiv, solve_lower_panel, solve_upper_panel
from repro.lu2d.storage import allocate_factor_storage, factor_words_per_rank

__all__ = [
    "Factor2DResult",
    "FactorOptions",
    "allocate_factor_storage",
    "batched_schur_update",
    "batched_syrk_update",
    "factor_2d",
    "factor_nodes_2d",
    "factor_words_per_rank",
    "gather_panels",
    "getrf_nopiv",
    "panel_offsets",
    "solve_lower_panel",
    "solve_upper_panel",
]
