"""Shared driver options and per-grid result records.

These live in their own module (rather than in ``factor2d``) because both
the drivers and the :mod:`repro.plan` layer need them: the plan builders
read the options, the plan interpreter fills the result, and keeping them
here breaks the import cycle between the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FactorOptions", "Factor2DResult"]


@dataclass(frozen=True)
class FactorOptions:
    """Tunables of the factorization drivers.

    Attributes
    ----------
    lookahead:
        Pipeline window in supernodes; SuperLU_DIST uses 8-20 (Section
        II-F). ``0`` disables pipelining (strictly synchronous steps).
    pivot_eps:
        GESP threshold: diagonal pivots below ``pivot_eps * ||A_kk||_max``
        are perturbed to that magnitude.
    track_buffers:
        Charge transient panel receive buffers to the memory ledgers.
    sparse_bcast:
        Prune broadcast receiver sets to the ranks that actually own an
        update target (SuperLU_DIST builds its BC/RD trees over exactly
        those ranks). ``False`` broadcasts along whole process rows/
        columns — the flat model Section IV analyzes.
    batched_schur:
        Apply each supernode's Schur update as one gathered panel GEMM +
        scatter (:mod:`repro.lu2d.batched`) instead of one GEMM per block
        pair. Numerically identical to roundoff and books bit-identical
        simulator ledgers; automatically falls back to the per-block loop
        when an accelerator is attached (offload decisions are per block).
    batch_min_pairs:
        Hybrid cutoff: panels with fewer than this many (i, j) block pairs
        take the per-block loop even when ``batched_schur`` is on — below
        ~32 pairs the gather/scatter fixed overhead exceeds the per-event
        savings. Both paths book identical ledgers, so the cutoff affects
        wall-clock only. Set to ``0`` to batch every panel.
    compile_plan:
        Run the plan compiler (:mod:`repro.plan.compile`) on the built
        plan before executing it: maximal same-kind task runs are fused
        into single vectorized dispatches (one batched ledger booking per
        run/segment instead of one per task). Ledgers and factors are
        bit-identical either way; resilience, tracing and accelerator
        runs ignore the flag (they observe per-task boundaries). The
        ``REPRO_COMPILE=0`` environment variable forces it off globally
        (CI's uncompiled tier-1 run).
    shm_transport:
        Back the 3D process-pool fan-out's replica shipping with
        ``multiprocessing.shared_memory``: workers receive (name, offset,
        shape) descriptors instead of pickled block arrays. Falls back to
        the pickle path when shared memory is unavailable; ``REPRO_SHM=0``
        forces the fallback.
    n_workers:
        Host worker processes for the 3D drivers' per-level fan-out
        (:mod:`repro.parallel`). ``1`` (default) keeps the serial in-place
        schedule with no pool; ``0`` means one worker per host core.
        Ledgers and factors are identical either way — the fan-out merges
        forked sub-simulator ledgers deterministically in grid order.
    parallel_backend:
        ``'process'`` (real multi-core), ``'thread'`` (BLAS-overlap only),
        or ``'serial'`` (the fork/merge path run inline — test hook).
    fault_plan:
        A :class:`repro.resilience.FaultPlan` of deterministic faults to
        inject (``None`` / empty = fault-free: every ledger stays
        bit-identical to seed). A non-empty plan (or checkpointing)
        routes the run through the resilience engine's serial monitored
        walk — worker fan-out is recorded as a ``ParallelFallback``.
    checkpoint_every:
        Take a coordinated checkpoint of the replica blocks and the plan
        walk position every this many interpreted tasks (``0`` = off).
        Checkpoint I/O cost is charged to the machine model
        (``io_alpha`` / ``io_beta``).
    recovery:
        Crash recovery policy: ``'restart'`` rolls every grid back to
        the last checkpoint; ``'z-replica'`` rebuilds only the crashed
        grid's state from the surviving sibling replicas along the z
        axis (the paper's ancestor replication, exploited for fault
        tolerance), falling back to restart where no replicas exist
        (2D runs, the merged variant's single global copy).
    compact_comm:
        Price every block message and block of factor/replica storage with
        the sparsity-aware compact model (:mod:`repro.comm.volume`):
        ``min(dense, 1.5 * nnz)`` words per block off the filled pattern's
        per-block nnz tables, instead of dense ``rows * cols``. Numerics
        are unaffected — only the booked word counts (and the worker
        transport's wire format) change. The ``REPRO_COMPACT`` environment
        variable overrides the flag either way (``1``/``0``).
    ancestor_replication:
        2.5D replication factor ``c`` for the dense common-ancestor levels
        (paper Section VII / Solomonik-Demmel). ``1`` (default) keeps
        Algorithm 1's schedule: each ancestor forest is factored by its
        home grid's 2D engine alone. ``c > 1`` factors each ancestor
        forest as one aggregate 2.5D sweep over ``min(c, 2^{l-q})`` of
        its replication range's grids — per-rank level volume drops from
        ``D/sqrt(Pxy)`` to ``D/(c*sqrt(Pxy))`` at ``c``-fold panel
        traffic. ``c = Pz`` reproduces the legacy ``lu3d.dense25`` cost
        study. A first-order *cost model*: ``c > 1`` requires cost-only
        runs (``numeric=False``, no resilience) on the standard
        (non-merged) LU driver.
    blocking:
        Supernode-boundary strategy for the symbolic phase: ``'uniform'``
        (the default — ``max_block``-capped equal chunks, SuperLU_DIST's
        ``maxsup`` behaviour) or ``'irregular'`` (pattern-driven
        boundaries from :mod:`repro.symbolic.blocking`: dense-row/
        arrowhead boundary snapping + similarity-gated amalgamation,
        floored by the uniform blocking so it never costs more words).
        Part of the plan/service cache key: different blockings never
        share a plan.
    """

    lookahead: int = 8
    pivot_eps: float = 1e-10
    track_buffers: bool = True
    sparse_bcast: bool = False
    batched_schur: bool = True
    batch_min_pairs: int = 32
    compile_plan: bool = True
    shm_transport: bool = True
    n_workers: int = 1
    parallel_backend: str = "process"
    fault_plan: object | None = None   # repro.resilience.FaultPlan
    checkpoint_every: int = 0
    recovery: str = "restart"
    compact_comm: bool = False
    ancestor_replication: int = 1
    blocking: str = "uniform"

    def __post_init__(self):
        if self.blocking not in ("uniform", "irregular"):
            raise ValueError(f"unknown blocking strategy {self.blocking!r}; "
                             "expected 'uniform' or 'irregular'")
        if self.ancestor_replication < 1:
            raise ValueError("ancestor_replication must be >= 1")
        if self.lookahead < 0:
            raise ValueError("lookahead must be non-negative")
        if self.pivot_eps <= 0:
            raise ValueError("pivot_eps must be positive")
        if self.n_workers < 0:
            raise ValueError("n_workers must be non-negative (0 = auto)")
        if self.parallel_backend not in ("process", "thread", "serial"):
            raise ValueError(
                f"unknown parallel_backend {self.parallel_backend!r}")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative (0 = off)")
        if self.recovery not in ("restart", "z-replica"):
            raise ValueError(f"unknown recovery policy {self.recovery!r}; "
                             "expected 'restart' or 'z-replica'")

    def resilience_active(self) -> bool:
        """Whether this run needs the monitored (serial) resilient walk."""
        return bool(self.fault_plan) or self.checkpoint_every > 0


@dataclass
class Factor2DResult:
    """Outcome of one per-grid (2D) factorization.

    ``buffer_peak_words`` is the peak *transient* panel-receive-buffer
    footprint on any rank — static L/U factor storage is excluded.
    ``n_batched_gemms`` counts gathered panel GEMMs issued by the batched
    Schur path; ``batch_fill_ratio`` is the fraction of the gathered
    ``W = L @ U`` products' entries that land in a destination block
    (1.0 for LU, < 1 for the symmetric Cholesky variant).
    """

    nodes: list[int]
    perturbed_pivots: int = 0
    panel_steps: int = 0
    schur_block_updates: int = 0
    buffer_peak_words: float = 0.0
    n_batched_gemms: int = 0
    batch_fill_ratio: float = 0.0
    extras: dict = field(default_factory=dict)
