"""Per-rank factor-storage accounting for the 2D block-cyclic distribution.

The static L/U data structure is allocated before numeric factorization
begins (SuperLU_DIST does the same after its symbolic phase); these helpers
charge that storage to each rank's memory ledger and compute the per-rank
word counts the memory experiments (Fig. 11, Eq. 1/5) need.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.comm.grid import ProcessGrid2D
from repro.comm.simulator import Simulator
from repro.symbolic.symbolic_factor import SymbolicFactorization

__all__ = ["allocate_factor_storage", "factor_words_per_rank", "node_blocks"]


def node_blocks(sf: SymbolicFactorization, k: int
                ) -> list[tuple[int, int, int]]:
    """All factor blocks of supernode ``k`` with their word sizes.

    Returns ``(i, j, words)`` triples for the diagonal block, the L panel
    (blocks ``(i, k)``) and the U panel (blocks ``(k, j)``) — the paper's
    ``A_s`` set for ``s = k``.
    """
    s = sf.layout.block_size(k)
    out = [(k, k, s * s)]
    for i in sf.fill.lpanel[k]:
        out.append((int(i), k, sf.layout.block_size(int(i)) * s))
    for j in sf.fill.upanel[k]:
        out.append((k, int(j), s * sf.layout.block_size(int(j))))
    return out


def factor_words_per_rank(sf: SymbolicFactorization, nodes: Iterable[int],
                          grid: ProcessGrid2D, nranks: int,
                          volume=None) -> np.ndarray:
    """Words of L/U factor storage each global rank owns for ``nodes``.

    ``volume`` is the :class:`repro.comm.volume.BlockVolume` pricing each
    block (``None`` = dense, the historical ``rows * cols`` accounting).
    """
    words = np.zeros(nranks)
    if volume is None:
        for k in nodes:
            for i, j, w in node_blocks(sf, k):
                words[grid.owner(i, j)] += w
    else:
        for k in nodes:
            for i, j, w in node_blocks(sf, k):
                words[grid.owner(i, j)] += volume.cap(i, j, float(w))
    return words


def allocate_factor_storage(sf: SymbolicFactorization, nodes: Iterable[int],
                            grid: ProcessGrid2D, sim: Simulator,
                            volume=None) -> None:
    """Charge the static factor storage of ``nodes`` to the owners' ledgers."""
    words = factor_words_per_rank(sf, nodes, grid, sim.nranks, volume=volume)
    for r in np.flatnonzero(words):
        sim.alloc(int(r), float(words[r]))
