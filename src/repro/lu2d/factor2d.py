"""The right-looking 2D factorization driver (``dSparseLU2D``).

Factors a given node list (the whole matrix for the 2D baseline; one forest
of the local elimination tree-forest when called from the 3D driver) on a
2D process grid, emitting every compute and communication event to the
simulator and — in numeric mode — performing the real block arithmetic
in place on a :class:`repro.sparse.blockmatrix.BlockMatrix`-like store.

The lookahead pipeline factors panels of upcoming *ready* supernodes (all
their in-list descendants' Schur updates applied — for leaves of the node
list, immediately) before performing the current node's Schur update, so
panel broadcasts travel while GEMMs run, exactly the overlap scheme of
Section II-F.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm.collectives import bcast
from repro.comm.grid import ProcessGrid2D
from repro.comm.simulator import Simulator
from repro.lu2d.batched import batched_schur_update
from repro.lu2d.kernels import getrf_nopiv, solve_lower_panel, solve_upper_panel
from repro.lu2d.storage import allocate_factor_storage
from repro.symbolic.symbolic_factor import SymbolicFactorization

__all__ = ["FactorOptions", "Factor2DResult", "factor_nodes_2d", "factor_2d"]


@dataclass(frozen=True)
class FactorOptions:
    """Tunables of the factorization drivers.

    Attributes
    ----------
    lookahead:
        Pipeline window in supernodes; SuperLU_DIST uses 8-20 (Section
        II-F). ``0`` disables pipelining (strictly synchronous steps).
    pivot_eps:
        GESP threshold: diagonal pivots below ``pivot_eps * ||A_kk||_max``
        are perturbed to that magnitude.
    track_buffers:
        Charge transient panel receive buffers to the memory ledgers.
    sparse_bcast:
        Prune broadcast receiver sets to the ranks that actually own an
        update target (SuperLU_DIST builds its BC/RD trees over exactly
        those ranks). ``False`` broadcasts along whole process rows/
        columns — the flat model Section IV analyzes.
    batched_schur:
        Apply each supernode's Schur update as one gathered panel GEMM +
        scatter (:mod:`repro.lu2d.batched`) instead of one GEMM per block
        pair. Numerically identical to roundoff and books bit-identical
        simulator ledgers; automatically falls back to the per-block loop
        when an accelerator is attached (offload decisions are per block).
    batch_min_pairs:
        Hybrid cutoff: panels with fewer than this many (i, j) block pairs
        take the per-block loop even when ``batched_schur`` is on — below
        ~32 pairs the gather/scatter fixed overhead exceeds the per-event
        savings. Both paths book identical ledgers, so the cutoff affects
        wall-clock only. Set to ``0`` to batch every panel.
    n_workers:
        Host worker processes for the 3D drivers' per-level fan-out
        (:mod:`repro.parallel`). ``1`` (default) keeps the serial in-place
        schedule with no pool; ``0`` means one worker per host core.
        Ledgers and factors are identical either way — the fan-out merges
        forked sub-simulator ledgers deterministically in grid order.
    parallel_backend:
        ``'process'`` (real multi-core), ``'thread'`` (BLAS-overlap only),
        or ``'serial'`` (the fork/merge path run inline — test hook).
    """

    lookahead: int = 8
    pivot_eps: float = 1e-10
    track_buffers: bool = True
    sparse_bcast: bool = False
    batched_schur: bool = True
    batch_min_pairs: int = 32
    n_workers: int = 1
    parallel_backend: str = "process"

    def __post_init__(self):
        if self.lookahead < 0:
            raise ValueError("lookahead must be non-negative")
        if self.pivot_eps <= 0:
            raise ValueError("pivot_eps must be positive")
        if self.n_workers < 0:
            raise ValueError("n_workers must be non-negative (0 = auto)")
        if self.parallel_backend not in ("process", "thread", "serial"):
            raise ValueError(
                f"unknown parallel_backend {self.parallel_backend!r}")


@dataclass
class Factor2DResult:
    """Outcome of one ``factor_nodes_2d`` call.

    ``buffer_peak_words`` is the peak *transient* panel-receive-buffer
    footprint on any rank — static L/U factor storage is excluded.
    ``n_batched_gemms`` counts gathered panel GEMMs issued by the batched
    Schur path; ``batch_fill_ratio`` is the fraction of the gathered
    ``W = L @ U`` products' entries that land in a destination block
    (1.0 for LU, < 1 for the symmetric Cholesky variant).
    """

    nodes: list[int]
    perturbed_pivots: int = 0
    panel_steps: int = 0
    schur_block_updates: int = 0
    buffer_peak_words: float = 0.0
    n_batched_gemms: int = 0
    batch_fill_ratio: float = 0.0
    extras: dict = field(default_factory=dict)


class _NullStore:
    """Cost-only mode: block lookups succeed but carry no data."""

    def __contains__(self, key) -> bool:  # pragma: no cover - trivial
        return False


def factor_nodes_2d(sf: SymbolicFactorization, nodes: list[int],
                    grid: ProcessGrid2D, sim: Simulator, data=None,
                    options: FactorOptions | None = None) -> Factor2DResult:
    """Factor ``nodes`` (ascending block ids) on ``grid``.

    ``data`` is a mapping ``(i, j) -> ndarray`` holding this grid's copy of
    every block the nodes touch (their panels and all Schur-update targets);
    pass ``None`` for cost-only simulation. Blocks are overwritten with the
    packed L\\U factors.
    """
    opts = options or FactorOptions()
    numeric = data is not None
    store = data if numeric else _NullStore()
    nodes = sorted(int(k) for k in nodes)
    node_set = set(nodes)
    layout = sf.layout
    sizes = layout.sizes()
    lpanel, upanel = sf.fill.lpanel, sf.fill.upanel
    costs = sf.costs
    use_batched = opts.batched_schur and sim.accelerator is None

    # In-list ancestor chains: for lookahead readiness and completion counts.
    anc_in_list: dict[int, list[int]] = {}
    pending = {k: 0 for k in nodes}
    for u in nodes:
        chain = []
        p = int(sf.tree.parent[u])
        while p != -1:
            if p in node_set:
                chain.append(p)
                pending[p] += 1
            p = int(sf.tree.parent[p])
        anc_in_list[u] = chain

    panel_done: set[int] = set()
    buffers: dict[int, list[tuple[int, float]]] = {}  # node -> [(rank, words)]
    result = Factor2DResult(nodes=nodes)
    # Transient panel-receive buffers only; sim.mem_peak also counts the
    # static L/U storage, which buffer_peak_words must exclude.
    buf_current = np.zeros(sim.nranks)
    fill_used = 0.0
    fill_total = 0.0

    def do_panel(k: int) -> None:
        s = int(sizes[k])
        lp, up = lpanel[k], upanel[k]
        owner_kk = grid.owner(k, k)
        # Pending offloaded updates may target this supernode's blocks:
        # drain the involved ranks' accelerators first (HALO sync point).
        if sim.accelerator is not None:
            sim.accel_sync(owner_kk)
            for j in up:
                sim.accel_sync(grid.owner(k, int(j)))
            for i in lp:
                sim.accel_sync(grid.owner(int(i), k))
        if numeric:
            result.perturbed_pivots += getrf_nopiv(store[(k, k)], opts.pivot_eps)
        sim.compute(owner_kk, costs.factor_flops[k], "diag")

        tri_words = s * (s + 1) / 2.0
        bufs: list[tuple[int, float]] = []

        def _bcast(root: int, ranks: list[int], words: float) -> None:
            if root not in ranks:
                ranks = [root] + ranks
            bcast(sim, root, ranks, words)
            if opts.track_buffers:
                for r in ranks:
                    if r != root:
                        sim.alloc(r, words)
                        bufs.append((r, words))
                        buf_current[r] += words
                        if buf_current[r] > result.buffer_peak_words:
                            result.buffer_peak_words = float(buf_current[r])

        if opts.sparse_bcast:
            # SuperLU's BC trees span only ranks owning an update target:
            # panel rows {i mod Px} and panel columns {j mod Py}. The target
            # coordinate sets are fixed per node, and distinct panel blocks
            # sharing a grid coordinate broadcast to the same rank list, so
            # both are built once here and the lists memoized by coordinate
            # (np.unique == sorted-set ordering, so ledgers are unchanged).
            target_rows = np.unique(
                np.asarray(lp, dtype=np.int64) % grid.px).tolist()
            target_cols = np.unique(
                np.asarray(up, dtype=np.int64) % grid.py).tolist()
            row_rank_cache: dict[int, list[int]] = {}
            col_rank_cache: dict[int, list[int]] = {}

            def ranks_in_row(ic: int) -> list[int]:
                ranks = row_rank_cache.get(ic)
                if ranks is None:
                    ranks = [grid.rank(ic, pj) for pj in target_cols]
                    row_rank_cache[ic] = ranks
                return ranks

            def ranks_in_col(jc: int) -> list[int]:
                ranks = col_rank_cache.get(jc)
                if ranks is None:
                    ranks = [grid.rank(pi, jc) for pi in target_rows]
                    col_rank_cache[jc] = ranks
                return ranks

            diag_row = ranks_in_row(k % grid.px)
            diag_col = ranks_in_col(k % grid.py)
        else:
            diag_row = grid.row_ranks(k)
            diag_col = grid.col_ranks(k)

        if len(up):
            _bcast(owner_kk, diag_row, tri_words)  # L_kk to U-panel owners
        if len(lp):
            _bcast(owner_kk, diag_col, tri_words)  # U_kk to L-panel owners

        for j in up:
            j = int(j)
            sj = int(sizes[j])
            o = grid.owner(k, j)
            if numeric:
                store[(k, j)][:] = solve_upper_panel(store[(k, k)], store[(k, j)])
            sim.compute(o, s * s * sj, "panel")
            if opts.sparse_bcast:
                ranks = ranks_in_col(j % grid.py)
            else:
                ranks = grid.col_ranks(j)
            _bcast(o, ranks, float(s * sj))
        for i in lp:
            i = int(i)
            si = int(sizes[i])
            o = grid.owner(i, k)
            if numeric:
                store[(i, k)][:] = solve_lower_panel(store[(k, k)], store[(i, k)])
            sim.compute(o, s * s * si, "panel")
            if opts.sparse_bcast:
                ranks = ranks_in_row(i % grid.px)
            else:
                ranks = grid.row_ranks(i)
            _bcast(o, ranks, float(si * s))

        buffers[k] = bufs
        panel_done.add(k)
        result.panel_steps += 1

    def do_schur(k: int) -> None:
        nonlocal fill_used, fill_total
        if use_batched and \
                len(lpanel[k]) * len(upanel[k]) >= opts.batch_min_pairs:
            nupd, used, total = batched_schur_update(
                data if numeric else None, k, lpanel[k], upanel[k], sizes,
                grid, sim)
            if nupd:
                result.schur_block_updates += nupd
                result.n_batched_gemms += 1
                fill_used += used
                fill_total += total
        else:
            s = int(sizes[k])
            for i in lpanel[k]:
                i = int(i)
                si = int(sizes[i])
                Lik = store[(i, k)] if numeric else None
                for j in upanel[k]:
                    j = int(j)
                    sj = int(sizes[j])
                    o = grid.owner(i, j)
                    if numeric:
                        store[(i, j)] -= Lik @ store[(k, j)]
                    flops = 2.0 * si * s * sj
                    if sim.accelerator is not None and \
                            sim.accelerator.should_offload(flops):
                        # HALO: big GEMMs go to the device (operands + result
                        # cross PCIe); small ones stay on the host.
                        words = float(si * s + s * sj + si * sj)
                        sim.offload_gemm(o, flops, words)
                    else:
                        sim.compute(o, flops, "schur", n_block_updates=1)
                    result.schur_block_updates += 1
        for r, words in buffers.pop(k, []):
            sim.free(r, words)
            buf_current[r] -= words
        for a in anc_in_list[k]:
            pending[a] -= 1

    for pos, k in enumerate(nodes):
        if k not in panel_done:
            do_panel(k)
        # Lookahead: factor panels of upcoming ready nodes.
        for m in nodes[pos + 1: pos + 1 + opts.lookahead]:
            if m not in panel_done and pending[m] == 0:
                do_panel(m)
        do_schur(k)

    if sim.accelerator is not None:
        for r in grid.all_ranks():
            sim.accel_sync(r)
    if fill_total > 0:
        result.batch_fill_ratio = fill_used / fill_total
    return result


def factor_2d(sf: SymbolicFactorization, grid: ProcessGrid2D, sim: Simulator,
              data=None, options: FactorOptions | None = None,
              charge_storage: bool = True) -> Factor2DResult:
    """Factor the whole matrix on a 2D grid (the baseline algorithm).

    With ``charge_storage`` the static L/U storage is charged to the memory
    ledgers before factorization, as SuperLU_DIST allocates it after the
    symbolic phase.
    """
    nodes = list(range(sf.nb))
    if charge_storage:
        allocate_factor_storage(sf, nodes, grid, sim)
    sim.set_phase("fact")
    return factor_nodes_2d(sf, nodes, grid, sim, data=data, options=options)
