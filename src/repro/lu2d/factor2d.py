"""The right-looking 2D factorization driver (``dSparseLU2D``).

Factors a given node list (the whole matrix for the 2D baseline; one forest
of the local elimination tree-forest when called from the 3D driver) on a
2D process grid, emitting every compute and communication event to the
simulator and — in numeric mode — performing the real block arithmetic
in place on a :class:`repro.sparse.blockmatrix.BlockMatrix`-like store.

Since the :mod:`repro.plan` refactor this module is a thin wrapper: it
builds the node list's task plan (:func:`repro.plan.build.build_grid_plan`
— which replays the Section II-F lookahead pipeline at build time) and
hands it to the shared interpreter with the LU kernel backend. The emitted
simulator events are bit-identical to the historical imperative loop.
"""

from __future__ import annotations

from repro.comm.grid import ProcessGrid2D
from repro.comm.simulator import Simulator
from repro.lu2d.options import Factor2DResult, FactorOptions
from repro.lu2d.storage import allocate_factor_storage
from repro.plan.build import build_grid_plan
from repro.plan.compile import compile_enabled, compile_plan
from repro.plan.interpret import execute_grid_plan
from repro.symbolic.symbolic_factor import SymbolicFactorization

__all__ = ["FactorOptions", "Factor2DResult", "factor_nodes_2d", "factor_2d"]


def factor_nodes_2d(sf: SymbolicFactorization, nodes: list[int],
                    grid: ProcessGrid2D, sim: Simulator, data=None,
                    options: FactorOptions | None = None) -> Factor2DResult:
    """Factor ``nodes`` (ascending block ids) on ``grid``.

    ``data`` is a mapping ``(i, j) -> ndarray`` holding this grid's copy of
    every block the nodes touch (their panels and all Schur-update targets);
    pass ``None`` for cost-only simulation. Blocks are overwritten with the
    packed L\\U factors.

    The emitted plan is stored on ``result.extras['plan']`` so callers can
    inspect the schedule (:class:`repro.analysis.PlanStats`); when the
    plan compiler ran, the executed :class:`repro.plan.CompiledPlan` is on
    ``result.extras['compiled']``.
    """
    opts = options or FactorOptions()
    plan = build_grid_plan(sf, nodes, grid, opts, backend="lu",
                           accelerated=sim.accelerator is not None)
    if opts.resilience_active():
        from repro.resilience.engine import execute_grid_plan_resilient
        result = execute_grid_plan_resilient(plan, sf, sim, data=data,
                                             options=opts, grid=grid)
        result.extras["plan"] = plan
        return result
    compiled = compile_plan(plan, sf, opts) \
        if compile_enabled(opts, sim) else None
    result = execute_grid_plan(compiled.plan if compiled else plan, sf, sim,
                               data=data, options=opts, grid=grid)
    result.extras["plan"] = plan
    if compiled is not None:
        result.extras["compiled"] = compiled
    return result


def factor_2d(sf: SymbolicFactorization, grid: ProcessGrid2D, sim: Simulator,
              data=None, options: FactorOptions | None = None,
              charge_storage: bool = True) -> Factor2DResult:
    """Factor the whole matrix on a 2D grid (the baseline algorithm).

    With ``charge_storage`` the static L/U storage is charged to the memory
    ledgers before factorization, as SuperLU_DIST allocates it after the
    symbolic phase.
    """
    from repro.comm.volume import volume_for
    nodes = list(range(sf.nb))
    if charge_storage:
        allocate_factor_storage(sf, nodes, grid, sim,
                                volume=volume_for(sf, options))
    sim.set_phase("fact")
    return factor_nodes_2d(sf, nodes, grid, sim, data=data, options=options)
