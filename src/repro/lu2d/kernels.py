"""Dense numeric kernels for the supernodal factorization.

The diagonal factorization is *unpivoted* LU with GESP perturbation —
SuperLU_DIST's static-pivoting scheme: a pivot smaller than
``eps * ||A_kk||`` is replaced by ``±eps * ||A_kk||``, and the resulting
backward error is cleaned up by iterative refinement
(:mod:`repro.solve.refine`). Row exchanges are never performed, which is
what makes the distributed schedule static — the property both the 2D
pipeline and the 3D replication scheme depend on.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as la

__all__ = ["getrf_nopiv", "solve_lower_panel", "solve_upper_panel"]

#: Unblocked threshold for the recursive LU.
_NB = 32


def _getrf_base(A: np.ndarray, tiny: float) -> int:
    """Unblocked in-place unpivoted LU; returns number of perturbed pivots."""
    n = A.shape[0]
    perturbed = 0
    for k in range(n):
        piv = A[k, k]
        if abs(piv) < tiny:
            piv = tiny if piv >= 0 else -tiny
            A[k, k] = piv
            perturbed += 1
        if k + 1 < n:
            A[k + 1:, k] /= piv
            A[k + 1:, k + 1:] -= np.outer(A[k + 1:, k], A[k, k + 1:])
    return perturbed


def getrf_nopiv(A: np.ndarray, eps: float = 1e-10) -> int:
    """In-place unpivoted LU of a square block, ``A <- L\\U`` packed.

    ``L`` is unit lower (diagonal implicit), ``U`` upper. Tiny pivots are
    perturbed to ``±eps * ||A||_max`` (GESP); the return value counts the
    perturbations so callers can report them.

    Uses recursive blocking so the bulk of the work is BLAS-3.
    """
    n = A.shape[0]
    if A.shape != (n, n):
        raise ValueError("diagonal block must be square")
    norm = np.abs(A).max()
    tiny = eps * norm if norm > 0 else eps
    return _getrf_recurse(A, tiny)


def _getrf_recurse(A: np.ndarray, tiny: float) -> int:
    n = A.shape[0]
    if n <= _NB:
        return _getrf_base(A, tiny)
    h = n // 2
    A11, A12 = A[:h, :h], A[:h, h:]
    A21, A22 = A[h:, :h], A[h:, h:]
    perturbed = _getrf_recurse(A11, tiny)
    # A12 <- L11^{-1} A12 ; A21 <- A21 U11^{-1}
    A12[:] = la.solve_triangular(A11, A12, lower=True, unit_diagonal=True)
    A21[:] = la.solve_triangular(A11, A21.T, trans="T", lower=False).T
    A22 -= A21 @ A12
    perturbed += _getrf_recurse(A22, tiny)
    return perturbed


def solve_upper_panel(diag_lu: np.ndarray, A_kj: np.ndarray) -> np.ndarray:
    """U-panel solve: ``U_kj = L_kk^{-1} A_kj`` given the packed LU of ``A_kk``."""
    return la.solve_triangular(diag_lu, A_kj, lower=True, unit_diagonal=True)


def solve_lower_panel(diag_lu: np.ndarray, A_ik: np.ndarray) -> np.ndarray:
    """L-panel solve: ``L_ik = A_ik U_kk^{-1}`` given the packed LU of ``A_kk``."""
    # X U = B  <=>  U^T X^T = B^T, and U^T is (non-unit) lower triangular.
    return la.solve_triangular(diag_lu, A_ik.T, trans="T", lower=False).T
