"""Batched supernodal Schur-update kernels (one panel GEMM + scatter).

The per-block Schur loop issues one tiny ``A_ij -= L_ik @ U_kj`` GEMM per
(i, j) block pair — thousands of BLAS calls whose fixed overhead dominates
the runtime at supernodal granularity. The paper's 2D pipeline (Section
II-F) and SuperLU_DIST instead perform the update as *one large panel
GEMM followed by a scatter*, and GLU3.0 showed the same batching is the
decisive kernel-level win for sparse LU on modern hardware. This module
implements that layer:

1. *gather* — stack the U-panel blocks of supernode ``k`` into one wide
   ``U`` matrix (block positions come from prefix sums of the
   :class:`~repro.sparse.blockmatrix.BlockLayout` sizes);
2. *GEMM* — one row-blocked product ``W_i = L_ik @ U`` per L-panel block
   (the product row stays cache-resident for its scatter instead of
   materializing the full ``|L| x |U|`` intermediate);
3. *scatter* — subtract each ``W_i`` tile from its destination block via
   the precomputed column offset map.

The result is numerically identical (to roundoff, < 1e-12 on the test
problems) to the per-block loop, and the simulator events it books are
*bit-for-bit* identical: :meth:`repro.comm.Simulator.compute_batch`
replays the loop's per-pair costs in the loop's order. Selected by
``FactorOptions.batched_schur`` (default on); panels below
``FactorOptions.batch_min_pairs`` block pairs stay on the per-block loop,
whose booked events are identical anyway, so the hybrid threshold is a
pure wall-clock decision.
"""

from __future__ import annotations

import numpy as np

from repro.comm.grid import ProcessGrid2D
from repro.comm.simulator import Simulator

__all__ = ["panel_offsets", "gather_panels", "schur_pair_costs",
           "syrk_pair_costs", "apply_schur_numeric", "apply_syrk_numeric",
           "batched_schur_update", "batched_syrk_update"]


def panel_offsets(sizes: np.ndarray, panel) -> tuple[np.ndarray, np.ndarray]:
    """Offsets of each panel block inside the stacked panel matrix.

    Returns ``(panel, off)`` where ``off[a]:off[a+1]`` is the row (or
    column) range of panel block ``a`` in the gathered matrix — the
    scatter map derived from the :class:`BlockLayout` sizes.
    """
    panel = np.asarray(panel, dtype=np.int64)
    off = np.zeros(panel.size + 1, dtype=np.int64)
    np.cumsum(sizes[panel], out=off[1:])
    return panel, off


def gather_panels(store, k: int, lp, up) -> tuple[np.ndarray, np.ndarray]:
    """Stack supernode ``k``'s L panel (tall) and U panel (wide)."""
    L = np.concatenate([store[(int(i), k)] for i in lp], axis=0)
    U = np.concatenate([store[(k, int(j))] for j in up], axis=1)
    return L, U


def schur_pair_costs(k: int, lp, up, sizes: np.ndarray, grid: ProcessGrid2D
                     ) -> tuple[np.ndarray, np.ndarray, int, float, float]:
    """Per-pair cost arrays of supernode ``k``'s LU Schur update.

    Returns ``(owners, flops, n_pairs, fill_used, fill_total)`` with
    ``owners``/``flops`` in the per-block loop's row-major (i, j) order —
    the exact arrays :func:`batched_schur_update` feeds to
    ``Simulator.compute_batch``, exposed separately so the plan compiler
    (:mod:`repro.plan.compile`) can concatenate them across a fused run.
    """
    lp = np.asarray(lp, dtype=np.int64)
    up = np.asarray(up, dtype=np.int64)
    if lp.size == 0 or up.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0), 0, 0.0, 0.0
    s = int(sizes[k])
    si = sizes[lp]
    sj = sizes[up]
    # Same association order as the loop path's 2.0 * si * s * sj, so the
    # booked per-pair flops are bit-identical.
    flops = (2.0 * si)[:, None] * s * sj[None, :]
    owners = grid.owner_map(lp, up)
    words = float(int(si.sum()) * int(sj.sum()))
    return owners.ravel(), flops.ravel(), int(lp.size * up.size), words, words


def apply_schur_numeric(store, k: int, lp, up, sizes: np.ndarray) -> None:
    """Numeric body of the gathered LU Schur update (no event booking).

    Row-blocked GEMM: one U gather, then ``W_i = L_ik @ U`` per L-panel
    block — the product row stays cache-resident for its scatter, avoiding
    the full ``|L| x |U|`` intermediate.
    """
    lp = np.asarray(lp, dtype=np.int64)
    up = np.asarray(up, dtype=np.int64)
    if lp.size == 0 or up.size == 0:
        return
    sj = sizes[up]
    col_off = np.zeros(up.size + 1, dtype=np.int64)
    np.cumsum(sj, out=col_off[1:])
    U = np.concatenate([store[(k, int(j))] for j in up], axis=1)
    cols = [(int(j), slice(int(col_off[b]), int(col_off[b + 1])))
            for b, j in enumerate(up)]
    for i in lp:
        i = int(i)
        Wi = store[(i, k)] @ U
        for j, cs in cols:
            dst = store[(i, j)]
            np.subtract(dst, Wi[:, cs], out=dst)


def batched_schur_update(store, k: int, lp, up, sizes: np.ndarray,
                         grid: ProcessGrid2D, sim: Simulator
                         ) -> tuple[int, float, float]:
    """Apply supernode ``k``'s whole Schur update as one gathered GEMM.

    ``store`` is the block mapping (``None`` in cost-only mode — the
    ledger events are booked either way). Returns ``(n_block_updates,
    scattered_words, gemm_words)``; for LU every tile of ``W`` hits a
    destination block, so the fill ratio is 1.
    """
    owners, flops, n_pairs, used, total = \
        schur_pair_costs(k, lp, up, sizes, grid)
    if n_pairs == 0:
        return 0, 0.0, 0.0
    if store is not None:
        apply_schur_numeric(store, k, lp, up, sizes)
    sim.compute_batch(owners, flops, "schur", n_block_updates=1)
    return n_pairs, used, total


def batched_syrk_update(store, k: int, lp, sizes: np.ndarray,
                        grid: ProcessGrid2D, sim: Simulator
                        ) -> tuple[int, float, float]:
    """Symmetric (Cholesky) batched Schur update: ``W = P @ P^T``.

    Gathers the L panel once, forms the full symmetric product, and
    scatters only the lower-triangle tiles (``j <= i``); the booked flops
    keep the loop path's convention — SYRK cost on the diagonal tiles,
    GEMM cost below — so ledgers match the loop bit-for-bit. Returns
    ``(n_block_updates, scattered_words, gemm_words)``.
    """
    owners, flops, n_pairs, used, total = syrk_pair_costs(k, lp, sizes, grid)
    if n_pairs == 0:
        return 0, 0.0, 0.0
    if store is not None:
        apply_syrk_numeric(store, k, lp, sizes)
    sim.compute_batch(owners, flops, "schur", n_block_updates=1)
    return n_pairs, used, total


def syrk_pair_costs(k: int, lp, sizes: np.ndarray, grid: ProcessGrid2D
                    ) -> tuple[np.ndarray, np.ndarray, int, float, float]:
    """Per-pair cost arrays of supernode ``k``'s symmetric Schur update.

    The Cholesky analogue of :func:`schur_pair_costs`: lower-triangle
    (i, j) pairs in the loop path's row-major order, SYRK cost on the
    diagonal tiles and GEMM cost below. Returns ``(owners, flops,
    n_pairs, fill_used, fill_total)``.
    """
    lp = np.asarray(lp, dtype=np.int64)
    if lp.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0), 0, 0.0, 0.0
    s = int(sizes[k])
    sl = sizes[lp]
    ii, jj = np.tril_indices(lp.size)  # row-major: the loop path's order
    si, sj = sl[ii], sl[jj]
    flops = 2.0 * si * s * sj
    diag = ii == jj
    flops[diag] = si[diag] * s * sj[diag]
    owners = grid.owner_map(lp, lp)[ii, jj]
    used = float((si * sj).sum())
    return owners, flops, int(ii.size), used, float(int(sl.sum())) ** 2


def apply_syrk_numeric(store, k: int, lp, sizes: np.ndarray) -> None:
    """Numeric body of the gathered symmetric update (no event booking)."""
    lp = np.asarray(lp, dtype=np.int64)
    if lp.size == 0:
        return
    sl = sizes[lp]
    off = np.zeros(lp.size + 1, dtype=np.int64)
    np.cumsum(sl, out=off[1:])
    PT = np.concatenate([store[(int(i), k)] for i in lp], axis=0).T
    cols = [(int(j), slice(int(off[b]), int(off[b + 1])))
            for b, j in enumerate(lp)]
    for a, i in enumerate(lp):
        i = int(i)
        Wi = store[(i, k)] @ PT[:, :int(off[a + 1])]
        for j, cs in cols[:a + 1]:
            dst = store[(i, j)]
            np.subtract(dst, Wi[:, cs], out=dst)
