"""Legacy setup shim.

Kept so `pip install -e .` works in offline environments whose pip cannot
bootstrap PEP 517/660 builds (no `wheel` package, no network). All metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
