"""Ablation: nested dissection vs minimum degree under the 3D algorithm.

The paper builds on nested dissection without arguing for it — this
ablation supplies the argument. Minimum degree often produces *less fill*
at moderate sizes, but its elimination trees are tall and skinny, so the
tree-forest partition cannot expose independent subtrees: the critical
path barely shrinks with Pz and the 3D algorithm's speedup evaporates.
Checks:

* the MD tree is several times deeper than the ND tree;
* under ND, the Pz=8 critical-path cost drops well below sequential;
  under MD it stays close to sequential (little tree parallelism);
* consequently the ND 3D makespan beats the MD 3D makespan at Pz=8 even
  when MD's fill (and flop count) is comparable or lower.
"""


from benchmarks.conftest import run_once
from repro.analysis import FactorizationMetrics, format_table
from repro.comm import Machine, ProcessGrid3D, Simulator
from repro.experiments.matrices import paper_suite
from repro.lu3d import factor_3d
from repro.ordering import minimum_degree_order, tree_from_order
from repro.symbolic import symbolic_factorize
from repro.tree import critical_path_cost, greedy_partition

P = 96
PZ = 8


def _run_3d(sf, pz):
    tf = greedy_partition(sf, pz)
    grid3 = ProcessGrid3D.from_total(P, pz)
    sim = Simulator(grid3.size, Machine.edison_like())
    factor_3d(sf, tf, grid3, sim, numeric=False)
    m = FactorizationMetrics.from_simulator(sim)
    cp = critical_path_cost(tf, sf.costs.node_flops)
    return m, cp


def test_ordering_ablation(benchmark):
    def run():
        # MD is O(n * degree^2)-ish in pure Python: use the tiny suite
        # sizes for it regardless of REPRO_SCALE.
        tm = {m.name: m for m in paper_suite("tiny")}["K2D5pt4096"]
        A, geom = tm.A, tm.geometry
        out = {}
        sf_nd = symbolic_factorize(A, geom, leaf_size=tm.leaf_size,
                                   max_block=tm.max_block)
        sf_md = symbolic_factorize(
            A, tree=tree_from_order(A, minimum_degree_order(A),
                                    max_block=tm.max_block))
        for label, sf in (("ND", sf_nd), ("MD", sf_md)):
            m1, _ = _run_3d(sf, 1)
            m8, cp8 = _run_3d(sf, PZ)
            out[label] = dict(sf=sf, m1=m1, m8=m8, cp8=cp8,
                              seq=sf.costs.total_flops,
                              height=sf.tree.height(),
                              fill=sf.costs.total_words)
        return out

    data = run_once(benchmark, run)

    rows = [[label, d["height"], d["fill"], d["seq"],
             d["cp8"] / d["seq"], d["m1"].makespan * 1e3,
             d["m8"].makespan * 1e3, d["m1"].makespan / d["m8"].makespan]
            for label, d in data.items()]
    print()
    print(format_table(
        ["ordering", "tree height", "fill words", "flops", "CP8/seq",
         "T(Pz=1) ms", f"T(Pz={PZ}) ms", "3D speedup"], rows,
        title=f"Ablation — ND vs minimum degree, P={P}, Pz={PZ} "
              "(planar proxy, tiny scale)"))

    nd, md = data["ND"], data["MD"]
    # Structure: MD tree much deeper.
    assert md["height"] > 2 * nd["height"]
    # Parallelism: ND's partition shortens the critical path more.
    assert nd["cp8"] / nd["seq"] < 0.35
    assert md["cp8"] / md["seq"] > nd["cp8"] / nd["seq"] * 1.3
    # Outcome: ND wins end-to-end by a wide margin at both Pz=1 and Pz=8
    # even though MD's fill is comparable or lower — the deep MD tree
    # serializes the panel pipeline and starves the tree-forest partition.
    # (MD's *relative* 3D gain can look larger only because its 2D
    # baseline is so much slower; absolute time is what matters.)
    assert md["fill"] < 1.5 * nd["fill"]
    assert nd["m1"].makespan < md["m1"].makespan
    assert nd["m8"].makespan * 5 < md["m8"].makespan
