"""Dense vs compact block-volume ablation, recorded in ``BENCH_comm.json``.

The block-volume model (:mod:`repro.comm.volume`) prices every message
and stored block either dense (``rows * cols`` words — the seed
convention) or compact (``min(dense, 1.5 * nnz)`` off the per-block
fill-in tables of :mod:`repro.symbolic.blocknnz`). This ablation runs the
same cost-only 3D factorization under both modes on one planar matrix
(``grid2d_5pt``: small separators, sparse ancestor blocks) and one
non-planar matrix (``grid3d_7pt``: the fill-heavy regime SpComm3D
targets) and records the per-phase word totals.

Hard bars:

* compact never exceeds dense in any phase on any matrix — the model is
  a per-block ``min``, so a violation means the pricing leaked somewhere;
* the non-planar total shrinks by >= 1.5x — the headline claim that
  index+value transport beats dense buffers precisely where fill is
  heaviest, not just on friendly planar problems.

Word ledgers are mode-dependent but *numeric*-independent, so the runs
are cost-only; the bit-identity of factors across modes is pinned by
``tests/test_volume.py``, not here.
"""

import json
from pathlib import Path

from benchmarks.conftest import run_once, scale
from repro.comm import ProcessGrid3D, Simulator
from repro.comm.simulator import PHASES
from repro.lu2d.factor2d import FactorOptions
from repro.lu3d import factor_3d
from repro.sparse import grid2d_5pt, grid3d_7pt
from repro.symbolic import symbolic_factorize
from repro.tree import greedy_partition

#: Per-scale workloads: (planar lattice edge, brick edge, leaf, Pz).
CONFIGS = {
    "tiny": {"planar_nx": 14, "brick_nx": 6, "leaf": 16, "pz": 2},
    "small": {"planar_nx": 24, "brick_nx": 8, "leaf": 16, "pz": 4},
    "medium": {"planar_nx": 32, "brick_nx": 10, "leaf": 24, "pz": 4},
}
MIN_NONPLANAR_REDUCTION = 1.5
OUT = Path(__file__).resolve().parent.parent / "BENCH_comm.json"


def _phase_volumes(sf, tf, pz: int, compact: bool) -> dict:
    grid3 = ProcessGrid3D(2, 2, pz)
    sim = Simulator(grid3.size)
    factor_3d(sf, tf, grid3, sim, numeric=False,
              options=FactorOptions(compact_comm=compact))
    return {p: float(sim.words_per_rank(phase=p).sum()) for p in PHASES}


def _case(name: str, A, geom, leaf: int, pz: int) -> dict:
    sf = symbolic_factorize(A, geom, leaf_size=leaf)
    tf = greedy_partition(sf, pz)
    dense = _phase_volumes(sf, tf, pz, compact=False)
    compact = _phase_volumes(sf, tf, pz, compact=True)
    for p in PHASES:
        assert compact[p] <= dense[p] + 1e-9, \
            f"{name} phase {p}: compact {compact[p]} > dense {dense[p]}"
    total_d = sum(dense.values())
    total_c = sum(compact.values())
    return {
        "matrix": name,
        "n": int(A.shape[0]),
        "n_supernodes": int(sf.nb),
        "grid": f"2x2x{pz}",
        "dense_words": {p: dense[p] for p in PHASES},
        "compact_words": {p: compact[p] for p in PHASES},
        "dense_total": total_d,
        "compact_total": total_c,
        "reduction": round(total_d / total_c, 3) if total_c else 1.0,
    }


def test_comm_volume_ablation(benchmark):
    sc = scale()
    cfg = CONFIGS[sc]

    def experiment():
        A_p, g_p = grid2d_5pt(cfg["planar_nx"])
        A_b, g_b = grid3d_7pt(cfg["brick_nx"])
        return [
            _case(f"grid2d_5pt({cfg['planar_nx']})", A_p, g_p,
                  cfg["leaf"], cfg["pz"]),
            _case(f"grid3d_7pt({cfg['brick_nx']})", A_b, g_b,
                  cfg["leaf"], cfg["pz"]),
        ]

    cases = run_once(benchmark, experiment)
    nonplanar = cases[1]
    assert nonplanar["reduction"] >= MIN_NONPLANAR_REDUCTION, \
        f"non-planar reduction {nonplanar['reduction']} below " \
        f"{MIN_NONPLANAR_REDUCTION}x"
    record = {
        "bench": "bench_comm_volume",
        "scale": sc,
        "threshold_nonplanar_reduction": MIN_NONPLANAR_REDUCTION,
        "skipped": None,
        "cases": cases,
    }
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    print()
    for c in cases:
        print(f"{c['matrix']:>18}: dense {c['dense_total']:.0f} words, "
              f"compact {c['compact_total']:.0f} words "
              f"({c['reduction']}x reduction)")
