"""Ablation: the Eq. (8) optimal-Pz rule vs an exhaustive Pz sweep.

Section IV-B derives Pz* = log2(n)/2 as the minimizer of the planar
factorization-phase communication (Eq. 7). We sweep Pz on the planar
proxy, find the measured W_fact minimizer, and check the analytic rule
lands within one power of two of it. For the non-planar proxy the
continuous optimum (Section IV-C, ~2.89x reduction) is compared with the
measured best total-volume reduction.
"""


from benchmarks.conftest import run_once, scale
from repro.analysis.report import format_table
from repro.experiments.harness import PreparedMatrix, pz_sweep
from repro.experiments.matrices import paper_suite
from repro.model import optimal_pz_planar
from repro.model.optimum import best_communication_reduction_nonplanar


def test_pz_choice_ablation(benchmark):
    def run():
        suite = {tm.name: tm for tm in paper_suite(scale())}
        out = {}
        for name in ("K2D5pt4096", "nlpkkt80"):
            pm = PreparedMatrix(suite[name])
            recs = pz_sweep(pm, 384, (1, 2, 4, 8, 16, 32, 64),
                            strategy="greedy")
            out[name] = (pm.sf.n, [(r.pz, r.metrics.w_fact_max,
                                    r.metrics.w_total_max,
                                    r.metrics.makespan) for r in recs])
        return out

    data = run_once(benchmark, run)
    rows = []
    for name, (n, recs) in data.items():
        for pz, wf, wt, t in recs:
            rows.append([name, pz, wf, wt, t * 1e3])
    print()
    print(format_table(["matrix", "Pz", "W_fact", "W_total", "T[ms]"], rows,
                       title="Ablation — Pz sweep vs Eq. (8), P=384 ranks"))

    # Planar. Eq. (8) minimizes the *asymptotic* factorization-phase model;
    # the paper's own measurements put the finite-n total-volume crossover
    # much later ("W_total will increase with Pz after Pz > 64"). So the
    # reproducible claims are:
    #   (a) Eq. (8)'s Pz already captures a large share of the gain;
    #   (b) W_fact keeps decreasing monotonically past it (Fig. 10);
    #   (c) W_total eventually turns back up — the W_red-driven crossover.
    n, recs = data["K2D5pt4096"]
    pz_star = optimal_pz_planar(n)
    wfact = {r[0]: r[1] for r in recs}
    wtot = {r[0]: r[2] for r in recs}
    print(f"planar: Eq.(8) Pz*={pz_star}, "
          f"W_fact(1)/W_fact(Pz*)={wfact[1] / wfact[pz_star]:.2f}x")
    assert pz_star in wfact
    assert wfact[pz_star] < wfact[1] / 3, \
        "Eq. (8)'s Pz should already cut W_fact by a large factor"
    pzs = sorted(wfact)
    assert all(wfact[a] >= wfact[b] for a, b in zip(pzs, pzs[1:])), \
        "W_fact should decrease monotonically with Pz"
    crossover = min((pz for pz in pzs[1:]
                     if wtot[pz] > wtot[pzs[pzs.index(pz) - 1]]),
                    default=None)
    print(f"planar: W_total crossover at Pz={crossover}")
    assert crossover is not None and crossover > pz_star, \
        "W_total crossover should exist and lie beyond Eq. (8)'s Pz"

    # Non-planar: measured best W_total reduction is a constant factor in
    # the ballpark of the paper's 2.89x bound (not more than ~2x off).
    n, recs = data["nlpkkt80"]
    red = recs[0][2] / min(r[2] for r in recs)
    bound = best_communication_reduction_nonplanar()
    print(f"non-planar: measured best W_total reduction {red:.2f}x, "
          f"analytic bound {bound:.2f}x")
    assert 1.3 < red < 3.0 * bound
