"""Factorization-service benchmark: plan-cache amortization + throughput.

Measures what the :mod:`repro.service` layer exists for, recorded in
``BENCH_service.json``:

* **Cold vs warm refactorization** — a cache-miss request pays symbolic
  analysis + plan build + compile + execution; a cache-hit replays the
  cached plan and pays kernels only. The warm path must be >= 2x faster
  (hard bar), and its ledgers must be *bit-identical* to a cold run with
  factors agreeing to 1e-12 — asserted here across all four drivers
  (LU 2D via pz=1, LU 3D, merged-grid, Cholesky) with the PR-5 oracle
  as referee.
* **Requests/sec at 1 / 4 / 16 concurrent clients** — throughput of the
  thread-pool front-end against a warm cache. This container has one
  core, so scaling numbers are recorded honestly rather than gated.
* **Cache-hit ratio** — for the mixed workload above.
"""

import json
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from benchmarks.conftest import run_once, scale
from repro.cholesky import SparseCholesky3D
from repro.comm import ProcessGrid3D, Simulator
from repro.lu3d.merged import factor_3d_merged
from repro.service import FactorizationService
from repro.solve import SparseLU3D
from repro.sparse import grid2d_5pt
from repro.symbolic import symbolic_factorize
from repro.tree import greedy_partition
from repro.verify.oracle import ledger_state

#: Lattice edge per scale (n = nx^2 unknowns).
CONFIGS = {"tiny": 16, "small": 24, "medium": 32}
LEAF = 16
MIN_WARM_SPEEDUP = 2.0
CLIENT_COUNTS = (1, 4, 16)
JOBS_PER_CLIENT = 2
WARM_REPS = 5
OUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _perturbed(A, seed):
    B = A.tocsr(copy=True)
    rng = np.random.default_rng(seed)
    B.data = B.data * (1.0 + 0.1 * rng.random(B.nnz))
    return ((B + B.T) * 0.5).tocsr()


def _spd(A):
    return (A + 4.0 * sp.identity(A.shape[0], format="csr")).tocsr()


# -- bit-identity oracle across the four drivers ---------------------------

def _check_facade(cls, A1, A2, geom, pz):
    """Warm refactorize vs fresh cold solver: identical ledgers, 1e-12."""
    kw = dict(geometry=geom, px=2, py=2, pz=pz, leaf_size=LEAF)
    warm = cls(A1, **kw).factorize()
    warm.refactorize(A2)
    assert warm.result.bundle is not None
    cold = cls(A2, **kw).factorize()
    assert ledger_state(warm.sim) == ledger_state(cold.sim), \
        f"{cls.__name__} pz={pz}: warm ledger != cold"
    Fw, Fc = warm.result.factors(), cold.result.factors()
    worst = 0.0
    for key in Fc.blocks:
        np.testing.assert_allclose(Fw.blocks[key], Fc.blocks[key],
                                   rtol=0, atol=1e-12)
        worst = max(worst, float(np.max(np.abs(Fw.blocks[key]
                                               - Fc.blocks[key]))))
    return worst


def _check_merged(A1, A2, geom):
    sf = symbolic_factorize(A1, geom, leaf_size=LEAF)
    tf = greedy_partition(sf, 4)
    grid3 = ProcessGrid3D(2, 2, 4)
    sim0 = Simulator(grid3.size)
    r0 = factor_3d_merged(sf, tf, grid3, sim0, numeric=True)
    A2p = sf.perm.apply_matrix(A2)
    sim_w = Simulator(grid3.size)
    rw = factor_3d_merged(sf, tf, grid3, sim_w, numeric=True, matrix=A2p,
                          cached=r0.bundle)
    sim_c = Simulator(grid3.size)
    rc = factor_3d_merged(sf, tf, grid3, sim_c, numeric=True, matrix=A2p)
    assert ledger_state(sim_w) == ledger_state(sim_c), \
        "merged: warm ledger != cold"
    worst = 0.0
    for key, arr in rc.merged_blocks.blocks.items():
        np.testing.assert_allclose(rw.merged_blocks.blocks[key], arr,
                                   rtol=0, atol=1e-12)
        worst = max(worst, float(np.max(np.abs(
            rw.merged_blocks.blocks[key] - arr))))
    return worst


def _identity_oracle(A, geom):
    A1, A2 = _perturbed(A, 11), _perturbed(A, 12)
    S1, S2 = _spd(A1), _spd(A2)
    return {
        "lu_2d_max_factor_diff": _check_facade(SparseLU3D, A1, A2, geom, 1),
        "lu_3d_max_factor_diff": _check_facade(SparseLU3D, A1, A2, geom, 4),
        "cholesky_max_factor_diff": _check_facade(SparseCholesky3D, S1, S2,
                                                  geom, 4),
        "merged_max_factor_diff": _check_merged(A1, A2, geom),
        "ledgers_identical": True,
    }


# -- cold/warm amortization ------------------------------------------------

def _cold_warm(A, geom):
    """Request wall time on a miss vs on hits, through the service."""
    with FactorizationService(geometry=geom, px=2, py=2, pz=4,
                              leaf_size=LEAF, max_workers=1) as svc:
        t0 = time.perf_counter()
        job = svc.solve(_perturbed(A, 0))
        cold_s = time.perf_counter() - t0
        assert not job.cache_hit
        warm = []
        for s in range(1, WARM_REPS + 1):
            M = _perturbed(A, s)
            t0 = time.perf_counter()
            job = svc.solve(M)
            warm.append(time.perf_counter() - t0)
            assert job.cache_hit
        (entry,) = svc.stats()["per_entry"]
    warm_s = float(np.median(warm))
    return {
        "cold_request_s": round(cold_s, 6),
        "warm_request_s_median": round(warm_s, 6),
        "warm_request_s_best": round(min(warm), 6),
        "warm_speedup": round(cold_s / warm_s, 3),
        "symbolic_plus_plan_build_s": round(entry["build_seconds"], 6),
        "plan_build_compile_s": round(entry["plan_build_seconds"], 6),
    }


# -- multi-client throughput ----------------------------------------------

def _throughput(A, geom):
    rows = {}
    mats = [_perturbed(A, 100 + s) for s in range(
        max(CLIENT_COUNTS) * JOBS_PER_CLIENT)]
    for clients in CLIENT_COUNTS:
        n_jobs = clients * JOBS_PER_CLIENT
        with FactorizationService(geometry=geom, px=2, py=2, pz=4,
                                  leaf_size=LEAF,
                                  max_workers=clients) as svc:
            svc.solve(mats[0])  # warm the cache outside the timed window

            def client(ms):
                return [svc.solve(M) for M in ms]

            chunks = [mats[c::clients][:JOBS_PER_CLIENT]
                      for c in range(clients)]
            t0 = time.perf_counter()
            with ThreadPoolExecutor(max_workers=clients) as pool:
                jobs = [j for f in [pool.submit(client, ch)
                                    for ch in chunks] for j in f.result()]
            wall = time.perf_counter() - t0
            st = svc.stats()
        assert len(jobs) == n_jobs and all(j.cache_hit for j in jobs)
        rows[str(clients)] = {
            "jobs": n_jobs,
            "wall_s": round(wall, 6),
            "req_per_s": round(n_jobs / wall, 2),
            "hit_ratio": round(st["hit_ratio"], 4),
        }
    return rows


def test_service_amortization(benchmark):
    sc = scale()
    nx = CONFIGS[sc]
    A, geom = grid2d_5pt(nx)

    def experiment():
        return {"cold_warm": _cold_warm(A, geom),
                "throughput": _throughput(A, geom),
                "identity": _identity_oracle(A, geom)}

    rec = run_once(benchmark, experiment)
    record = {
        "bench": "bench_service",
        "scale": sc,
        "workload": {"matrix": f"grid2d_5pt({nx})", "leaf": LEAF,
                     "grid": "2x2x4", "numeric": True,
                     "warm_reps": WARM_REPS,
                     "jobs_per_client": JOBS_PER_CLIENT},
        "threshold_warm_speedup": MIN_WARM_SPEEDUP,
        "note": "single-core container: requests/sec at 4/16 clients "
                "documents front-end overhead, not host parallelism",
        **rec,
    }
    OUT.write_text(json.dumps(record, indent=2) + "\n")

    cw, tp = rec["cold_warm"], rec["throughput"]
    print()
    print(f"factorization service @ {sc} (grid2d_5pt({nx}), leaf {LEAF}, "
          f"grid 2x2x4):")
    print(f"  cold request : {cw['cold_request_s'] * 1e3:8.2f} ms "
          f"(symbolic+plan build "
          f"{cw['symbolic_plus_plan_build_s'] * 1e3:.2f} ms)")
    print(f"  warm request : {cw['warm_request_s_median'] * 1e3:8.2f} ms "
          f"median -> {cw['warm_speedup']:.2f}x")
    for c in CLIENT_COUNTS:
        row = tp[str(c)]
        print(f"  {c:2d} client(s) : {row['req_per_s']:7.1f} req/s "
              f"({row['jobs']} jobs in {row['wall_s'] * 1e3:.1f} ms, "
              f"hit ratio {row['hit_ratio']:.2f})")
    print("  identity     : warm ledgers bit-identical on all four "
          "drivers; max |warm - cold| factor entry "
          f"{max(v for k, v in rec['identity'].items() if k.endswith('diff')):.2e}")
    print(f"  record written to {OUT.name}")

    assert rec["identity"]["ledgers_identical"]
    assert cw["warm_speedup"] >= MIN_WARM_SPEEDUP, \
        f"warm speedup {cw['warm_speedup']} < {MIN_WARM_SPEEDUP}"
