"""Ablation: supernode relaxation (amalgamation of small blocks).

The flip side of the supernode-cap ablation: `max_block` splits blocks
that are too big, `relax` merges blocks that are too small. On a
fine-grained dissection (small leaves), relaxation trades a bounded fill
increase for a large reduction in message count and per-update overhead —
the same trade SuperLU's ``relax`` parameter makes. The sweep shows the
trade-off curve and checks that a moderate relaxation strictly improves
the modeled time on both a planar and a non-planar proxy.
"""

from benchmarks.conftest import run_once, scale
from repro.analysis import FactorizationMetrics, format_table
from repro.comm import Machine, ProcessGrid3D, Simulator
from repro.experiments.matrices import paper_suite
from repro.lu3d import factor_3d
from repro.ordering import nested_dissection, relax_supernodes
from repro.symbolic import symbolic_factorize
from repro.tree import greedy_partition

P = 96
PZ = 4
RELAX = (1, 16, 48, 96)  # 1 = no-op baseline


def test_relaxation_ablation(benchmark):
    def run():
        suite = {tm.name: tm for tm in paper_suite(scale())}
        out = {}
        for name in ("K2D5pt4096", "Serena"):
            tm = suite[name]
            base_tree = nested_dissection(tm.A, tm.geometry, leaf_size=16,
                                          max_block=tm.max_block)
            rows = []
            for r in RELAX:
                tree = relax_supernodes(base_tree, min_size=r,
                                        max_block=tm.max_block)
                sf = symbolic_factorize(tm.A, tree=tree)
                tf = greedy_partition(sf, PZ)
                grid3 = ProcessGrid3D.from_total(P, PZ)
                sim = Simulator(grid3.size, Machine.edison_like())
                factor_3d(sf, tf, grid3, sim, numeric=False)
                m = FactorizationMetrics.from_simulator(sim)
                rows.append((r, sf.nb, m.msgs_max, sf.costs.total_words,
                             m.makespan))
            out[name] = rows
        return out

    data = run_once(benchmark, run)

    table = []
    for name, rows in data.items():
        for r, nb, msgs, words, t in rows:
            table.append([name, r, nb, msgs, words, t * 1e3])
    print()
    print(format_table(
        ["matrix", "relax", "#blocks", "max msgs/rank", "fill words",
         "T [ms]"], table,
        title=f"Ablation — supernode relaxation, P={P}, Pz={PZ}, leaf=16"))

    for name, rows in data.items():
        by = {r: (nb, msgs, words, t) for r, nb, msgs, words, t in rows}
        # Block counts fall monotonically; max-rank message counts fall
        # too, up to small block-cyclic remapping wobble (5%).
        for a, b in zip(RELAX, RELAX[1:]):
            assert by[b][0] <= by[a][0], f"{name}: blocks not decreasing"
            assert by[b][1] <= 1.05 * by[a][1], \
                f"{name}: messages not decreasing"
        # Fill grows, but boundedly, through the moderate settings.
        assert by[48][2] < 3.0 * by[1][2], f"{name}: fill blow-up"
        # Moderate relaxation strictly beats the unrelaxed fine-grained
        # tree on modeled time.
        assert min(by[16][3], by[48][3]) < by[1][3], \
            f"{name}: relaxation should pay off at leaf=16"
