"""Ablation: greedy load-balance partition vs naive ND split (Fig. 8).

Section III-C's greedy heuristic exists because the plain nested-
dissection split can leave the two child forests badly unbalanced. Two
checks:

* on the (balanced) model problems the greedy result never loses to the
  naive split, for any Pz;
* on a cost-skewed tree — the same dissection structure but with one
  subtree 20x heavier, emulating a matrix with a much denser corner
  region (Fig. 8's scenario) — the greedy partition's critical path is
  strictly shorter;
* end-to-end, the greedy strategy's modeled makespan never exceeds the
  naive one on the real suite.
"""

import numpy as np

from benchmarks.conftest import run_once, scale
from repro.analysis.report import format_table
from repro.experiments.harness import PreparedMatrix, run_configuration
from repro.experiments.matrices import paper_suite
from repro.tree import critical_path_cost, greedy_partition, naive_partition


def test_partition_ablation(benchmark):
    def run():
        rows = []
        # Balanced suite: greedy never loses (by construction of the
        # improvement loop, but this is the regression guard).
        for tm in paper_suite(scale())[:4]:
            pm = PreparedMatrix(tm)
            w = pm.sf.costs.node_flops
            for pz in (4, 8):
                cg = critical_path_cost(pm.partition(pz, "greedy"), w)
                cn = critical_path_cost(pm.partition(pz, "naive"), w)
                rows.append([tm.name, pz, cg, cn, cn / cg])

        # Skewed case: same planar dissection tree, but leaf-dominated
        # costs with one top-level subtree's leaves 20x heavier — a matrix
        # whose corner region needs far more elimination work while its
        # separators stay cheap, which is exactly where the naive ND split
        # cannot rebalance and Fig. 8's heuristic pays off.
        suite = {tm.name: tm for tm in paper_suite(scale())}
        pm = PreparedMatrix(suite["K2D5pt4096"])
        sf = pm.sf
        is_leaf = np.array([sf.tree.nodes[k].is_leaf for k in range(sf.nb)])
        w_skew = np.where(is_leaf, 100.0, 1.0)
        # Descend the root's supernode chain to the first real branching
        # node; one of its two region subtrees becomes the heavy corner.
        branch = sf.tree.root
        while len(sf.tree.children_of(branch)) == 1:
            branch = sf.tree.children_of(branch)[0]
        heavy_child = sf.tree.children_of(branch)[0]
        heavy = np.zeros(sf.nb, dtype=bool)
        heavy[sf.tree.subtree_of(heavy_child)] = True
        w_skew[heavy & is_leaf] *= 20.0
        for pz in (2, 4, 8):
            cg = critical_path_cost(greedy_partition(sf, pz, weights=w_skew),
                                    w_skew)
            cn = critical_path_cost(naive_partition(sf, pz, weights=w_skew),
                                    w_skew)
            rows.append(["K2D5pt-skewed", pz, cg, cn, cn / cg])

        # End-to-end makespans on a real non-planar matrix.
        pm2 = PreparedMatrix(suite["Serena"])
        t = {}
        for strat in ("greedy", "naive"):
            rec = run_configuration(pm2, P=96, pz=8, strategy=strat)
            t[strat] = rec.metrics.makespan
        return rows, t

    rows, makespans = run_once(benchmark, run)
    print()
    print(format_table(
        ["matrix", "Pz", "CP greedy", "CP naive", "naive/greedy"], rows,
        title="Ablation — greedy vs naive etree partition (critical-path cost)"))
    print(f"Serena end-to-end makespan: greedy={makespans['greedy']:.4f}s "
          f"naive={makespans['naive']:.4f}s")

    for name, pz, cg, cn, ratio in rows:
        assert cg <= cn * (1 + 1e-9), f"{name} pz={pz}: greedy worse than naive"
    skew = [r for r in rows if r[0] == "K2D5pt-skewed"]
    assert any(r[4] > 1.10 for r in skew), \
        "greedy should strictly beat naive on the skewed tree"
    assert makespans["greedy"] <= makespans["naive"] * 1.05
