"""Plan-compilation ablations: fused dispatch count and shm transport.

Two ablations, both with hard bars, recorded in ``BENCH_compile.json``:

* **Fused vs unfused dispatch** — the compile pass exists to cut
  interpreter overhead, so the honest metric is how many dispatches the
  interpreter performs, not modeled seconds (fusion never changes those:
  ledgers are asserted bit-identical here). On the cost-only workload the
  fused plan must need >= 3x fewer dispatches, and the wall-clock per
  original task is reported for both forms.
* **Shm vs pickle transport** — the zero-copy fan-out ships
  ``(segment, offset, shape)`` descriptors instead of block bytes. On a
  numeric fan-out the shm path must ship >= 10x fewer bytes than the
  pickle path, with bit-identical ledgers and factors.

The transport ablation runs the ``serial`` in-process backend so the
byte accounting is exact and core count is irrelevant; host-parallel
speedup bars live in ``bench_parallel_scaling.py`` (and are skipped
honestly on small hosts).
"""

import json
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once, scale
from repro.comm import ProcessGrid3D, Simulator
from repro.lu2d.factor2d import FactorOptions
from repro.lu3d import factor_3d
from repro.lu3d.factor3d import CostOnlyData, Factor3DResult, _execute_plan3d
from repro.plan import compile_plan
from repro.plan.build import build_3d_plan
from repro.sparse import grid2d_5pt
from repro.symbolic import symbolic_factorize
from repro.tree import greedy_partition
from repro.verify.oracle import ledger_state

PZ = 8
LEAF = 8
#: Planar lattice edge per scale for the cost-only dispatch ablation.
CONFIGS = {"tiny": 48, "small": 64, "medium": 80}
#: The numeric transport ablation is fixed-size: byte ratios are a
#: property of the transport, not the workload.
TRANSPORT_NX, TRANSPORT_LEAF, TRANSPORT_PZ = 20, 16, 4
MIN_DISPATCH_REDUCTION = 3.0
MIN_SHM_BYTES_RATIO = 10.0
REPS = 3
OUT = Path(__file__).resolve().parent.parent / "BENCH_compile.json"


def _prepare(nx: int, leaf: int, pz: int):
    A, geom = grid2d_5pt(nx)
    sf = symbolic_factorize(A, geom, leaf_size=leaf)
    return sf, greedy_partition(sf, pz)


def _exec_cost(plan3, sf, tf, grid3):
    """Interpret one (possibly compiled) Plan3D cost-only; return the sim."""
    sim = Simulator(grid3.size)
    t0 = time.perf_counter()
    _execute_plan3d(plan3, sf, sim, Factor3DResult(tf), FactorOptions(),
                    None, CostOnlyData())
    return time.perf_counter() - t0, sim


def _dispatch_ablation(sf, tf):
    # Compilation is a once-per-plan cost (recorded as compile_s); the
    # interpreter-overhead row times the execution phase alone, which is
    # what fusion speeds up and what repeated solves amortize against.
    grid3 = ProcessGrid3D(2, 2, PZ)
    opts = FactorOptions()
    plan3 = build_3d_plan(sf, tf, grid3, opts, backend="lu")
    t_compile = 1e9
    for _ in range(REPS):
        t0 = time.perf_counter()
        comp = compile_plan(plan3, sf, opts)
        t_compile = min(t_compile, time.perf_counter() - t0)
    runs_f = [_exec_cost(comp.plan, sf, tf, grid3) for _ in range(REPS)]
    runs_p = [_exec_cost(plan3, sf, tf, grid3) for _ in range(REPS)]
    t_fused = min(r[0] for r in runs_f)
    t_plain = min(r[0] for r in runs_p)
    assert ledger_state(runs_f[-1][1]) == ledger_state(runs_p[-1][1]), \
        "fused cost-only ledgers diverged from unfused"
    st = comp.stats
    n_before, n_after = st.n_tasks_before, st.n_tasks_after
    return {
        "dispatches_unfused": int(n_before),
        "dispatches_fused": int(n_after),
        "dispatch_reduction": round(float(st.dispatch_reduction), 3),
        "fused_runs": int(st.n_fused),
        "vector_unsafe_runs": int(st.n_vector_unsafe),
        "compile_s": round(t_compile, 6),
        "time_fused_s": round(t_fused, 6),
        "time_unfused_s": round(t_plain, 6),
        "exec_speedup": round(t_plain / t_fused, 3),
        # interpreter-overhead row: original tasks retired per second of
        # host time -- the quantity fusion improves.
        "tasks_per_s_fused": round(n_before / t_fused, 1),
        "tasks_per_s_unfused": round(n_before / t_plain, 1),
        "ledgers_identical": True,
    }


def _transport_run(sf, tf, use_shm: bool):
    grid3 = ProcessGrid3D(2, 2, TRANSPORT_PZ)
    sim = Simulator(grid3.size)
    res = factor_3d(sf, tf, grid3, sim, numeric=True,
                    options=FactorOptions(n_workers=2,
                                          parallel_backend="serial",
                                          shm_transport=use_shm))
    levels = [st for st in res.parallel_stats if hasattr(st, "transport")]
    return (ledger_state(sim), res.factors().to_dense(), levels)


def _transport_ablation():
    sf, tf = _prepare(TRANSPORT_NX, TRANSPORT_LEAF, TRANSPORT_PZ)
    led_s, F_s, shm_levels = _transport_run(sf, tf, True)
    led_p, F_p, pkl_levels = _transport_run(sf, tf, False)
    assert led_s == led_p, "shm ledgers diverged from pickle"
    assert np.array_equal(F_s, F_p), "shm factors diverged from pickle"
    assert {st.transport for st in shm_levels} == {"shm"}
    assert {st.transport for st in pkl_levels} == {"pickle"}
    shm_bytes = float(sum(st.bytes_shipped for st in shm_levels))
    pkl_bytes = float(sum(st.bytes_shipped for st in pkl_levels))
    return {
        "workload": f"grid2d_5pt({TRANSPORT_NX}), "
                    f"leaf {TRANSPORT_LEAF}, pz={TRANSPORT_PZ}, numeric",
        "levels_fanned_out": len(shm_levels),
        "shm_bytes": shm_bytes,
        "pickle_bytes": pkl_bytes,
        "bytes_ratio": round(pkl_bytes / shm_bytes, 2),
        "ledgers_identical": True,
        "factors_identical": True,
    }


def test_compile_ablations(benchmark):
    sc = scale()
    nx = CONFIGS[sc]
    sf, tf = _prepare(nx, LEAF, PZ)

    def experiment():
        return {"dispatch": _dispatch_ablation(sf, tf),
                "transport": _transport_ablation()}

    rec = run_once(benchmark, experiment)
    record = {
        "bench": "bench_compile",
        "scale": sc,
        "workload": {"matrix": f"grid2d_5pt({nx})", "leaf": LEAF,
                     "grid": f"2x2x{PZ}", "numeric": False,
                     "n_supernodes": sf.nb, "reps_best_of": REPS},
        "threshold_dispatch": MIN_DISPATCH_REDUCTION,
        "threshold_bytes": MIN_SHM_BYTES_RATIO,
        "skipped": None,
        **rec,
    }
    OUT.write_text(json.dumps(record, indent=2) + "\n")

    d, t = rec["dispatch"], rec["transport"]
    print()
    print(f"plan compilation @ {sc} (grid2d_5pt({nx}), leaf {LEAF}, "
          f"pz={PZ}, best of {REPS}):")
    print(f"  dispatches : {d['dispatches_unfused']} -> "
          f"{d['dispatches_fused']}  ({d['dispatch_reduction']:.2f}x "
          f"reduction, {d['fused_runs']} fused runs)")
    print(f"  cost-only  : exec {d['time_unfused_s']:.3f}s -> "
          f"{d['time_fused_s']:.3f}s  ({d['exec_speedup']:.2f}x, "
          f"{d['tasks_per_s_unfused']:.0f} -> "
          f"{d['tasks_per_s_fused']:.0f} tasks/s; "
          f"compile once {d['compile_s']:.3f}s)")
    print(f"  transport  : {t['pickle_bytes']:.0f}B pickle -> "
          f"{t['shm_bytes']:.0f}B shm  ({t['bytes_ratio']:.1f}x fewer "
          f"bytes over {t['levels_fanned_out']} levels)")
    print(f"  record written to {OUT.name}")

    assert d["dispatch_reduction"] >= MIN_DISPATCH_REDUCTION, \
        f"dispatch reduction {d['dispatch_reduction']} < " \
        f"{MIN_DISPATCH_REDUCTION}"
    assert t["bytes_ratio"] >= MIN_SHM_BYTES_RATIO, \
        f"shm byte ratio {t['bytes_ratio']} < {MIN_SHM_BYTES_RATIO}"
