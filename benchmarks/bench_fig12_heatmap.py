"""Fig. 12 + Section V-F: performance heatmap over PXY x Pz.

For the planar K2D5pt proxy and the non-planar nlpkkt80 proxy, sweep all
(PXY, Pz) combinations and report achieved GFLOP/s (baseline flop count /
modeled time — the paper's normalization). Reproduced claims:

* the best configuration of every matrix has Pz > 1 (3D beats 2D);
* the planar matrix reaches its best performance at a small-to-moderate
  PXY and large Pz (the paper's constant-PXY ridge), so for fixed total P
  it prefers depth over area;
* the non-planar matrix wants *both*: its best configuration uses a
  larger PXY than the planar one at the same total P (the diagonal ridge);
* best-3D over best-2D speedup is large for planar, moderate (paper:
  2.1-3.3x) for non-planar.
"""


from benchmarks.conftest import run_once, scale
from repro.experiments.fig12 import fig12_text, run_fig12


def test_fig12_heatmap(benchmark):
    heatmaps = run_once(benchmark, lambda: run_fig12(scale=scale()))
    print()
    print(fig12_text(heatmaps))

    by = {hm.matrix: hm for hm in heatmaps}
    k2d = by["K2D5pt4096"]
    nlp = by["nlpkkt80"]

    # 3D beats 2D for both matrices; planar gains more (V-F: 5-27.4x vs
    # 2.1-3.3x).
    assert k2d.best_case_speedup > 2.0
    assert nlp.best_case_speedup > 1.2
    assert k2d.best_case_speedup > nlp.best_case_speedup

    # Best configurations use Pz > 1.
    assert k2d.best_config()[1] > 1
    assert nlp.best_config()[1] > 1

    # Ridge shapes at fixed total P: among configurations with the same
    # P = PXY*Pz budget, the planar matrix prefers at least as much depth
    # (Pz) as the non-planar one.
    def best_pz_at_total(hm, total):
        best, arg = -1.0, None
        for i, pxy in enumerate(hm.pxy):
            for j, pz in enumerate(hm.pz):
                if pxy * pz == total and hm.gflops[i, j] > best:
                    best, arg = hm.gflops[i, j], pz
        return arg

    for total in (96, 192, 384):
        pz_planar = best_pz_at_total(k2d, total)
        pz_nonpl = best_pz_at_total(nlp, total)
        assert pz_planar is not None and pz_nonpl is not None
        assert pz_planar >= pz_nonpl, (
            f"P={total}: planar best Pz {pz_planar} < non-planar {pz_nonpl}")

    # Performance grows with total ranks along each matrix's ridge — the
    # strong-scaling headroom claim ("up to 16x more processors with
    # continued time reduction").
    for hm in heatmaps:
        best_per_total = {}
        for i, pxy in enumerate(hm.pxy):
            for j, pz in enumerate(hm.pz):
                t = pxy * pz
                best_per_total[t] = max(best_per_total.get(t, 0.0),
                                        hm.gflops[i, j])
        totals = sorted(best_per_total)
        gains = [best_per_total[b] / best_per_total[a]
                 for a, b in zip(totals, totals[1:])]
        # At least the first few doublings keep improving performance.
        assert all(g > 1.0 for g in gains[:3]), \
            f"{hm.matrix}: no strong-scaling headroom ({gains})"
