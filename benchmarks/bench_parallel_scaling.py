"""Host-parallel scaling bench: the per-level z-grid fan-out vs serial.

Algorithm 1's structural win is that the ``Pz`` subtree-forests of every
level factor independently on disjoint 2D grids; :mod:`repro.parallel`
exploits that on the host by running them on a process pool with forked
simulator ledgers merged back in grid order. This bench factors a planar
problem at ``pz = 8`` (numeric mode) serially and with 2 and 4 workers
and records the wall-clock ratio in ``BENCH_parallel.json``.

Correctness is asserted unconditionally and is the real gate: every
simulator ledger must be *bit-identical* across worker counts, and the
assembled factors must agree to 1e-12. The ≥1.5x 4-worker speedup bar is
asserted only when the host actually has ≥ 4 cores — on smaller CI/dev
boxes the record still documents the measured ratio, but a machine
without the cores cannot fail a multi-core scaling bar meaningfully.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once, scale
from repro.comm import ProcessGrid3D, Simulator
from repro.comm.simulator import COMPUTE_KINDS, PHASES
from repro.lu2d.factor2d import FactorOptions
from repro.lu3d import factor_3d
from repro.sparse import grid2d_5pt
from repro.symbolic import symbolic_factorize
from repro.tree import greedy_partition

PZ = 8
WORKER_COUNTS = (2, 4)
#: Planar lattice edge per scale; pz=8 keeps every level >= 2 grids wide
#: until the root so the fan-out engages at 3 of the 4 levels.
CONFIGS = {"tiny": 24, "small": 40, "medium": 56}
MIN_SPEEDUP_4W = 1.5
REPS = 3
OUT = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _prepare(nx: int):
    A, geom = grid2d_5pt(nx)
    sf = symbolic_factorize(A, geom, leaf_size=16)
    tf = greedy_partition(sf, PZ)
    return sf, tf


def _run(sf, tf, n_workers: int):
    grid3 = ProcessGrid3D(2, 2, PZ)
    sim = Simulator(grid3.size)
    opts = FactorOptions(n_workers=n_workers)
    t0 = time.perf_counter()
    res = factor_3d(sf, tf, grid3, sim, numeric=True, options=opts)
    return time.perf_counter() - t0, sim, res


def _best(sf, tf, n_workers: int):
    runs = [_run(sf, tf, n_workers) for _ in range(REPS)]
    best = min(r[0] for r in runs)
    return best, runs[-1][1], runs[-1][2]


def _interpreter_overhead(sf, tf):
    """Cost-only interpreter-overhead row: with no numeric kernels the
    run is pure dispatch, so execution tasks/second isolates what the
    compile pass (:mod:`repro.plan.compile`) removes. Compilation itself
    is a once-per-plan cost, timed separately."""
    from repro.lu3d.factor3d import (CostOnlyData, Factor3DResult,
                                     _execute_plan3d)
    from repro.plan import compile_plan
    from repro.plan.build import build_3d_plan

    grid3 = ProcessGrid3D(2, 2, PZ)
    opts = FactorOptions()
    plan3 = build_3d_plan(sf, tf, grid3, opts, backend="lu")
    comp = compile_plan(plan3, sf, opts)

    def exec_once(plan):
        sim = Simulator(grid3.size)
        t0 = time.perf_counter()
        _execute_plan3d(plan, sf, sim, Factor3DResult(tf), opts,
                        None, CostOnlyData())
        return time.perf_counter() - t0

    t_fused = min(exec_once(comp.plan) for _ in range(REPS))
    t_plain = min(exec_once(plan3) for _ in range(REPS))
    st = comp.stats
    return {
        "dispatches_unfused": int(st.n_tasks_before),
        "dispatches_fused": int(st.n_tasks_after),
        "dispatch_reduction": round(float(st.dispatch_reduction), 3),
        "tasks_per_s_unfused": round(st.n_tasks_before / t_plain, 1),
        "tasks_per_s_fused": round(st.n_tasks_before / t_fused, 1),
    }


def _ledgers(sim: Simulator) -> list[np.ndarray]:
    out = [sim.clock, sim.mem_current, sim.mem_peak]
    out += [sim.flops[k] for k in COMPUTE_KINDS]
    out += [sim.t_compute[k] for k in COMPUTE_KINDS]
    for p in PHASES:
        out += [sim.words_sent[p], sim.words_recv[p],
                sim.msgs_sent[p], sim.msgs_recv[p]]
    return out


def test_parallel_scaling(benchmark):
    sc = scale()
    nx = CONFIGS[sc]
    sf, tf = _prepare(nx)
    cores = os.cpu_count() or 1

    def experiment():
        t_serial, sim_s, res_s = _best(sf, tf, 1)
        F_serial = res_s.factors().to_dense()
        base_ledgers = _ledgers(sim_s)
        base_events = dict(sim_s.event_counts)
        out = {"serial_s": round(t_serial, 6)}
        for nw in WORKER_COUNTS:
            t_par, sim_p, res_p = _best(sf, tf, nw)
            identical = all(np.array_equal(a, b) for a, b in
                            zip(base_ledgers, _ledgers(sim_p))) \
                and base_events == dict(sim_p.event_counts)
            assert identical, f"{nw}-worker ledgers diverged from serial"
            diff = float(np.abs(F_serial
                                - res_p.factors().to_dense()).max())
            assert diff <= 1e-12, f"{nw}-worker factors diverged: {diff}"
            out[f"workers_{nw}"] = {
                "time_s": round(t_par, 6),
                "speedup": round(t_serial / t_par, 3),
                "ledgers_identical": identical,
                "factor_max_abs_diff": diff,
                "mean_utilization": round(float(np.mean(
                    [st.utilization for st in res_p.parallel_stats
                     if hasattr(st, "utilization")])), 3),
                "transports": sorted({st.transport
                                      for st in res_p.parallel_stats
                                      if hasattr(st, "transport")}),
            }
        out["interpreter_overhead"] = _interpreter_overhead(sf, tf)
        return out

    rec = run_once(benchmark, experiment)
    record = {
        "bench": "bench_parallel_scaling",
        "scale": sc,
        "workload": {"matrix": f"grid2d_5pt({nx})", "grid": f"2x2x{PZ}",
                     "numeric": True, "n_supernodes": sf.nb,
                     "reps_best_of": REPS},
        "host_cores": cores,
        "threshold_4w": MIN_SPEEDUP_4W,
        "threshold_enforced": cores >= 4,
        # Explicit skip marker: consumers of BENCH_parallel.json should
        # never have to infer from host_cores whether the speedup bar was
        # actually applied. None = enforced.
        "skipped": None if cores >= 4 else
                   f"speedup bar not enforced: host has {cores} cores < 4",
        **rec,
    }
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(f"parallel z-grid fan-out @ {sc} (pz={PZ}, {cores} host cores, "
          f"best of {REPS}):")
    print(f"  serial   : {rec['serial_s']:.3f}s")
    for nw in WORKER_COUNTS:
        r = rec[f"workers_{nw}"]
        print(f"  {nw} workers: {r['time_s']:.3f}s  -> {r['speedup']:.2f}x  "
              f"(util {r['mean_utilization']:.2f}, "
              f"transport {'/'.join(r['transports'])})")
    ov = rec["interpreter_overhead"]
    print(f"  cost-only interpreter overhead: "
          f"{ov['dispatches_unfused']} -> {ov['dispatches_fused']} "
          f"dispatches ({ov['dispatch_reduction']:.2f}x), "
          f"{ov['tasks_per_s_unfused']:.0f} -> "
          f"{ov['tasks_per_s_fused']:.0f} tasks/s")
    print(f"  record written to {OUT.name}")

    if cores >= 4:
        got = rec["workers_4"]["speedup"]
        assert got >= MIN_SPEEDUP_4W, \
            f"4-worker speedup {got} < {MIN_SPEEDUP_4W} on a {cores}-core host"
    else:
        print(f"  ({cores} host cores < 4: speedup bar recorded, "
              "not enforced)")
