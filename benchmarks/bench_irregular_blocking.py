"""Irregular vs uniform blocking ablation, recorded in ``BENCH_blocking.json``.

Runs the structure-aware irregular blocking (:mod:`repro.symbolic.blocking`)
against the uniform ``max_block`` cap on the workload-zoo matrices the
source paper never tested — arrowhead, banded-with-dense-rows, power-law
graph Laplacian, plus the circuit-like lattice as the friendly control —
and records, per matrix:

* total factor words under both blockings (the storage/traffic proxy the
  uniform floor compares on);
* end-to-end simulated 3D communication volume (cost-only ``factor_3d``
  on a 2x2x2 grid) under both blockings;
* the per-process comm volume at a fixed rank count P=8, as a flat 2D
  grid (4x2x1) vs the 3D grid (2x2x2), under the irregular blocking —
  the paper's headline Fig.-10 trade (subtree replication buys reduced
  factorization traffic) reproduced on matrices outside its test set.

Hard bars:

* irregular factor words <= uniform on EVERY matrix (the floor makes
  this a structural guarantee — a violation means the floor leaked);
* irregular 3D comm volume <= uniform on the circuit-like and arrowhead
  cases, and strictly better by >= MIN_COMM_WIN on at least two of the
  adversarial matrices (arrowhead / banded / power-law);
* at P=8 the 3D grid beats the flat 2D grid's per-process comm volume on
  two paper-untested matrices (power-law, banded-dense-rows) by
  >= MIN_3D_WIN, and on arrowhead the *absence* of a win is bounded: a
  chain-shaped elimination tree (1D geometry, dense border eliminated
  last) gives Pz-parallelism nothing to distribute, so 3D can at best
  tie — the measured ratio is recorded in the JSON (``words_2d``/
  ``words_3d`` per case) and asserted to stay within MAX_3D_LOSS of the
  2D grid, honestly, not clamped.
"""

import json
from pathlib import Path

from benchmarks.conftest import run_once, scale
from repro.comm import ProcessGrid3D, Simulator
from repro.lu2d.factor2d import FactorOptions
from repro.lu3d import factor_3d
from repro.sparse import (
    arrowhead,
    banded_dense_rows,
    circuit_like,
    power_law_laplacian,
)
from repro.symbolic import symbolic_factorize
from repro.tree import greedy_partition

#: Per-scale workloads: matrix sizes + blocking knobs.
CONFIGS = {
    "tiny": {"arrow_n": 192, "banded_n": 256, "plaw_n": 256,
             "circuit_nx": 12, "leaf": 32, "max_block": 32},
    "small": {"arrow_n": 512, "banded_n": 512, "plaw_n": 512,
              "circuit_nx": 16, "leaf": 48, "max_block": 32},
    "medium": {"arrow_n": 1024, "banded_n": 1024, "plaw_n": 1024,
               "circuit_nx": 24, "leaf": 64, "max_block": 48},
}
#: Relative comm-volume win irregular must post on >= 2 adversarial cases.
MIN_COMM_WIN = 0.01
#: Relative comm-volume win the 3D grid must post over 2D (same P=8) on
#: the paper-untested headline matrices (under irregular blocking).
MIN_3D_WIN = 0.02
#: Arrowhead's chain etree cannot profit from Pz: 3D must at worst tie
#: 2D within this relative slack (measured: -0.1%).
MAX_3D_LOSS = 0.02
OUT = Path(__file__).resolve().parent.parent / "BENCH_blocking.json"


def _comm_words(sf, px: int, py: int, pz: int) -> float:
    """Per-process cost-only comm words on a Px x Py x Pz grid."""
    tf = greedy_partition(sf, pz)
    grid3 = ProcessGrid3D(px, py, pz)
    sim = Simulator(grid3.size)
    factor_3d(sf, tf, grid3, sim, numeric=False, options=FactorOptions())
    return float(sim.words_per_rank().sum()) / grid3.size


def _case(name: str, A, geom, leaf: int, max_block: int) -> dict:
    sf_u = symbolic_factorize(A, geom, leaf_size=leaf, max_block=max_block)
    sf_i = symbolic_factorize(A, geom, leaf_size=leaf, max_block=max_block,
                              blocking="irregular")
    words_u = sf_u.costs.total_words
    words_i = sf_i.costs.total_words
    assert words_i <= words_u, \
        f"{name}: irregular factor words {words_i} > uniform {words_u} " \
        "(the uniform floor leaked)"
    comm_u = _comm_words(sf_u, 2, 2, 2)
    comm_i = _comm_words(sf_i, 2, 2, 2)
    comm_2d = _comm_words(sf_i, 4, 2, 1)  # same P=8, flat grid
    return {
        "matrix": name,
        "n": int(A.shape[0]),
        "nb_uniform": int(sf_u.nb),
        "nb_irregular": int(sf_i.nb),
        "blocking_info": {k: v for k, v in sf_i.blocking_info.items()},
        "factor_words_uniform": words_u,
        "factor_words_irregular": words_i,
        "comm_words_uniform_3d": comm_u,
        "comm_words_irregular_3d": comm_i,
        "comm_win": round(1.0 - comm_i / comm_u, 4) if comm_u else 0.0,
        "words_2d": comm_2d,
        "words_3d": comm_i,
        "win_3d_over_2d": round(1.0 - comm_i / comm_2d, 4) if comm_2d else 0.0,
    }


def test_irregular_blocking_ablation(benchmark):
    sc = scale()
    cfg = CONFIGS[sc]

    def experiment():
        A_a, g_a = arrowhead(cfg["arrow_n"], border=8)
        A_b, g_b = banded_dense_rows(cfg["banded_n"], ndense=4, seed=0)
        A_p = power_law_laplacian(cfg["plaw_n"], seed=0)[0]
        A_c, g_c = circuit_like(cfg["circuit_nx"], seed=0)
        leaf, mb = cfg["leaf"], cfg["max_block"]
        return [
            _case(f"arrowhead({cfg['arrow_n']})", A_a, g_a, leaf, mb),
            _case(f"banded_dense_rows({cfg['banded_n']})", A_b, g_b,
                  leaf, mb),
            _case(f"power_law_laplacian({cfg['plaw_n']})", A_p, None,
                  leaf, mb),
            _case(f"circuit_like({cfg['circuit_nx']})", A_c, g_c, leaf, mb),
        ]

    cases = run_once(benchmark, experiment)
    by_name = {c["matrix"].split("(")[0]: c for c in cases}

    # Irregular never ships more than uniform on the gate matrices.
    for key in ("circuit_like", "arrowhead"):
        c = by_name[key]
        assert c["comm_words_irregular_3d"] <= \
            c["comm_words_uniform_3d"] + 1e-9, \
            f"{c['matrix']}: irregular comm exceeds uniform"

    # ...and posts a real win on >= 2 adversarial matrices.
    adversarial = ["arrowhead", "banded_dense_rows", "power_law_laplacian"]
    wins = [k for k in adversarial if by_name[k]["comm_win"] >= MIN_COMM_WIN]
    assert len(wins) >= 2, \
        f"irregular won >= {MIN_COMM_WIN:.0%} on only {wins} " \
        f"(volumes: {[(k, by_name[k]['comm_win']) for k in adversarial]})"

    # The paper's 3D-over-2D comm win, reproduced on untested matrices —
    # and honestly bounded where the structure defeats it (arrowhead's
    # chain etree: no subtree parallelism for Pz to exploit).
    for key in ("power_law_laplacian", "banded_dense_rows"):
        c = by_name[key]
        assert c["win_3d_over_2d"] >= MIN_3D_WIN, \
            f"{c['matrix']}: 3D beats 2D by only {c['win_3d_over_2d']:.1%}" \
            f" (recorded in BENCH_blocking.json)"
    arrow = by_name["arrowhead"]
    assert arrow["win_3d_over_2d"] >= -MAX_3D_LOSS, \
        f"arrowhead: 3D loses {-arrow['win_3d_over_2d']:.1%} to 2D, " \
        f"beyond the {MAX_3D_LOSS:.0%} chain-etree bound"

    record = {
        "bench": "bench_irregular_blocking",
        "scale": sc,
        "threshold_comm_win": MIN_COMM_WIN,
        "threshold_3d_win": MIN_3D_WIN,
        "threshold_3d_loss_arrowhead": MAX_3D_LOSS,
        "skipped": None,
        "cases": cases,
    }
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    print()
    for c in cases:
        print(f"{c['matrix']:>28}: comm uniform "
              f"{c['comm_words_uniform_3d']:.3e} -> irregular "
              f"{c['comm_words_irregular_3d']:.3e} "
              f"({c['comm_win']:+.1%} win), 3D-over-2D "
              f"{c['win_3d_over_2d']:+.1%}")
