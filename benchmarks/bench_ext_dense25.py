"""Extension bench: the complete Section VII ancestor-level design space.

The paper sketches two remedies for the shrunken-grid ancestor bottleneck
and defers both: (a) merge idle grids into a larger 2D grid, or (b) run a
dense 2.5D LU across the replication layers. Both are implemented here —
(a) as a real per-block schedule (`factor_3d_merged`), (b) as a
first-order cost model (`factor_3d_dense25`) — and compared against
standard Algorithm 1. Expected ordering, from the analysis:

    standard  >=  merged  >=  2.5D      (modeled time, non-planar, big Pz)

because merging buys the extra ranks (`W ~ D/sqrt(c*Pxy)`) and 2.5D
additionally buys replication (`W ~ D/(c*sqrt(Pxy))`). For planar
matrices all three are within noise of each other — tiny separators leave
nothing to accelerate.
"""


from benchmarks.conftest import run_once, scale
from repro.analysis import FactorizationMetrics, format_table
from repro.comm import Machine, ProcessGrid3D, Simulator
from repro.experiments.harness import PreparedMatrix
from repro.experiments.matrices import paper_suite
from repro.lu3d import factor_3d
from repro.lu3d.dense25 import factor_3d_dense25
from repro.lu3d.merged import factor_3d_merged

P = 96
PZ_VALUES = (8, 16)
VARIANTS = {"standard": factor_3d, "merged": factor_3d_merged,
            "dense25": factor_3d_dense25}


def _run(pm, pz, variant):
    grid3 = ProcessGrid3D.from_total(P, pz)
    sim = Simulator(grid3.size, Machine.edison_like())
    fn = VARIANTS[variant]
    if variant == "standard":
        fn(pm.sf, pm.partition(pz), grid3, sim, numeric=False)
    else:
        fn(pm.sf, pm.partition(pz), grid3, sim)
    return FactorizationMetrics.from_simulator(sim)


def test_section7_ancestor_variants(benchmark):
    def run():
        suite = {tm.name: tm for tm in paper_suite(scale())}
        return {name: {(pz, v): _run(PreparedMatrix(suite[name]), pz, v)
                       for pz in PZ_VALUES for v in VARIANTS}
                for name in ("K2D5pt4096", "Serena", "nlpkkt80")}

    data = run_once(benchmark, run)

    rows = []
    for name, grid in data.items():
        for pz in PZ_VALUES:
            rows.append([name, pz] + [grid[(pz, v)].makespan * 1e3
                                      for v in VARIANTS])
    print()
    print(format_table(["matrix", "Pz"] + [f"T {v} [ms]" for v in VARIANTS],
                       rows,
                       title=f"Section VII ancestor-level variants, P={P}"))

    for name, grid in data.items():
        planar = name == "K2D5pt4096"
        for pz in PZ_VALUES:
            t_std = grid[(pz, "standard")].makespan
            t_mrg = grid[(pz, "merged")].makespan
            t_25 = grid[(pz, "dense25")].makespan
            if planar:
                # Little to win on tiny separators: all within 40%.
                assert max(t_std, t_mrg, t_25) < 1.4 * min(t_std, t_mrg, t_25)
            else:
                # The predicted ordering (with 3% slack on the first step,
                # which is a real schedule vs a real schedule).
                assert t_mrg < 1.03 * t_std
                assert t_25 < t_mrg, \
                    f"{name} Pz={pz}: 2.5D should beat merged"
        # At Pz=16 the non-planar gains are large (the regime Section VII
        # targets).
        if not planar:
            gain = grid[(16, "standard")].makespan / \
                grid[(16, "dense25")].makespan
            assert gain > 1.8, f"{name}: 2.5D gain only {gain:.2f}x"
