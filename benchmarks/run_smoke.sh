#!/usr/bin/env bash
# Perf smoke gate (~20 s): the batched Schur kernel must not lose to the
# per-block loop (bench_kernel_batched.py asserts batched >= loop and
# bit-identical ledgers at REPRO_SCALE=tiny), and one headline paper
# bench must still pass end-to-end. The fig9 bench runs at the default
# small scale because its Pz-shape assertions (the paper's non-planar
# Pz=16 retreat) only emerge once the proxy matrices are big enough.
# Exits non-zero on any failure.
#
# Usage: benchmarks/run_smoke.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

REPRO_SCALE=tiny python -m pytest benchmarks/bench_kernel_batched.py \
    --benchmark-only --benchmark-disable-gc -q -s
# Parallel fan-out divergence gate: the scaling bench asserts bit-identical
# ledgers and 1e-12 factor agreement across worker counts unconditionally
# (the speedup bar itself only applies on >= 4-core hosts).
REPRO_SCALE=tiny python -m pytest benchmarks/bench_parallel_scaling.py \
    --benchmark-only --benchmark-disable-gc -q -s
# Resilience gate: the monitored walk must be free when no fault fires
# (bit-identical ledgers), both recovery policies must reproduce the
# fault-free factors to 1e-12, and localized z-replica recovery must
# beat the global restart on aggregate overhead.
REPRO_SCALE=tiny python -m pytest benchmarks/bench_resilience.py \
    --benchmark-only --benchmark-disable-gc -q -s
REPRO_SCALE=small python -m pytest benchmarks/bench_fig9_16nodes.py \
    --benchmark-only --benchmark-disable-gc -q
# Compile-pass gate: the plan compiler must cut interpreter dispatches
# >= 3x with bit-identical cost-only ledgers (fused-vs-unfused identity
# is asserted inside the bench), and the shm worker transport must ship
# >= 10x fewer bytes than pickle with identical ledgers and factors.
REPRO_SCALE=tiny python -m pytest benchmarks/bench_compile.py \
    --benchmark-only --benchmark-disable-gc -q -s
# Factorization-service gate: a cache-hit request (plan replay) must run
# >= 2x faster than a cache-miss request (symbolic + plan build + compile
# + execute), with warm ledgers bit-identical to cold and factors within
# 1e-12 on all four drivers (LU 2D, LU 3D, merged, Cholesky).
REPRO_SCALE=tiny python -m pytest benchmarks/bench_service.py \
    --benchmark-only --benchmark-disable-gc -q -s
# Comm-volume gate: compact block pricing must never exceed dense in any
# phase (per-block min), and must cut the non-planar total >= 1.5x — the
# regime where dense buffers overstate volume the most.
REPRO_SCALE=tiny python -m pytest benchmarks/bench_comm_volume.py \
    --benchmark-only --benchmark-disable-gc -q -s
# Autotune gate: the ledger-validated search must pick a configuration
# whose measured cost-only total words beat the naive near-square Pz=1
# grid (>= 1.3x on the non-planar zoo case; planar must not lose), with
# every validated candidate carrying a predicted-vs-measured pair.
REPRO_SCALE=tiny python -m pytest benchmarks/bench_autotune.py \
    --benchmark-only --benchmark-disable-gc -q -s
# Blocking gate: the structure-aware irregular blocking must never ship
# more comm words than the uniform cap on the circuit-like and arrowhead
# matrices (the floor guarantee), must post a real win on >= 2 of the
# adversarial generators, and the 3D-over-2D comm trade must hold (or be
# honestly bounded, for arrowhead's chain etree) on the new workload zoo.
REPRO_SCALE=tiny python -m pytest benchmarks/bench_irregular_blocking.py \
    --benchmark-only --benchmark-disable-gc -q -s
# Verifier self-test gate (cheap): deleting a dependency edge from a real
# plan MUST trip the static race detector — proves the analyzer guarding
# the whole suite (tests/conftest.py installs it on every plan build) is
# not vacuously green.
python -m pytest tests/test_verify.py -q -k mutation

echo "smoke OK: batched kernel >= loop, parallel ledgers identical, resilience free when idle, fig9 green, compile pass >= 3x with identical ledgers, warm refactorize >= 2x with identical ledgers, compact volume <= dense with >= 1.5x non-planar cut, autotuned grid >= 1.3x vs naive non-planar, irregular blocking <= uniform comm with adversarial wins, race detector armed"
