"""Table III: the test-matrix suite (proxy vs paper reference).

Regenerates the suite statistics: n, nnz/n, symbolic flop count and the
modeled baseline 2D factorization time on 96 ranks, next to the paper's
values for the original matrices.

Pass criteria target the *structure* of the table: the classification
split (4 planar / 6 non-planar), nnz/n in the right class ballpark for
the low-density circuit matrices, and the work ordering among proxies
(e.g. nlpkkt80 and Serena carry the most flops relative to their size,
as in the paper).
"""

from benchmarks.conftest import run_once, scale
from repro.experiments.table3 import run_table3, table3_text


def test_table3_suite(benchmark):
    rows = run_once(benchmark, lambda: run_table3(scale=scale()))
    print()
    print(table3_text(rows))

    assert len(rows) == 10
    assert sum(r.planar for r in rows) == 4

    by = {r.name: r for r in rows}
    # Circuit-class matrices are an order of magnitude sparser than FEM.
    for name in ("G3_circuit", "Ecology1", "K2D5pt4096"):
        assert by[name].nnz_per_row < 8.0
    for name in ("audikw_1", "dielFilterV3real"):
        assert by[name].nnz_per_row > 20.0

    # Per-unknown factorization work: non-planar >> planar (the fill-in
    # asymmetry the whole paper is about).
    def flops_per_n(r):
        return r.flops / r.n
    planar_work = max(flops_per_n(r) for r in rows if r.planar)
    nonplanar_work = max(flops_per_n(r) for r in rows
                         if not r.planar and r.name != "ldoor")
    assert nonplanar_work > 5 * planar_work

    # The thin slab behaves nearly planar in work density, as the paper
    # notes for ldoor.
    assert flops_per_n(by["ldoor"]) < 0.3 * nonplanar_work

    # Baseline times are positive and the heaviest matrix is non-planar.
    heaviest = max(rows, key=lambda r: r.tfact_2d)
    assert not heaviest.planar or heaviest.name in ("K2D5pt4096",)
