"""Ablation: flat row/column broadcasts vs sparsity-pruned BC trees.

Section IV's model charges every panel broadcast to the full process
row/column; the real SuperLU_DIST builds its broadcast trees only over
ranks that own an update target. The option `FactorOptions(sparse_bcast)`
switches between the two. Checks:

* pruning reduces total and per-rank factorization volume on every
  matrix class, without changing a single flop;
* the saving is larger for matrices with *sparser* panels (planar) than
  for ones whose panels already touch most of the grid (non-planar top
  separators) — pruning has less to remove there;
* the paper-model conclusions (Fig. 9 shape) are unchanged: the sweep's
  Pz ordering is identical under both settings.
"""

from benchmarks.conftest import run_once, scale
from repro.analysis import FactorizationMetrics, format_table
from repro.comm import Machine, ProcessGrid3D, Simulator
from repro.experiments.harness import PreparedMatrix
from repro.experiments.matrices import paper_suite
from repro.lu2d import FactorOptions
from repro.lu3d import factor_3d

P = 96


def _run(pm, pz, sparse_bcast):
    grid3 = ProcessGrid3D.from_total(P, pz)
    sim = Simulator(grid3.size, Machine.edison_like())
    factor_3d(pm.sf, pm.partition(pz), grid3, sim, numeric=False,
              options=FactorOptions(sparse_bcast=sparse_bcast))
    return FactorizationMetrics.from_simulator(sim)


def test_sparse_bcast_ablation(benchmark):
    def run():
        suite = {tm.name: tm for tm in paper_suite(scale())}
        out = {}
        for name in ("K2D5pt4096", "Serena"):
            pm = PreparedMatrix(suite[name])
            out[name] = {(pz, sb): _run(pm, pz, sb)
                         for pz in (1, 4, 16) for sb in (False, True)}
        return out

    data = run_once(benchmark, run)

    rows = []
    for name, grid in data.items():
        for pz in (1, 4, 16):
            flat, pruned = grid[(pz, False)], grid[(pz, True)]
            rows.append([name, pz, flat.w_fact_max, pruned.w_fact_max,
                         flat.w_fact_max / pruned.w_fact_max,
                         flat.makespan * 1e3, pruned.makespan * 1e3])
    print()
    print(format_table(
        ["matrix", "Pz", "W flat", "W pruned", "reduction",
         "T flat [ms]", "T pruned [ms]"], rows,
        title=f"Ablation — flat vs sparsity-pruned broadcasts, P={P}"))

    for name, grid in data.items():
        for pz in (1, 4, 16):
            flat, pruned = grid[(pz, False)], grid[(pz, True)]
            assert pruned.w_fact_max < flat.w_fact_max, \
                f"{name} Pz={pz}: pruning saved nothing"
            assert pruned.total_flops == flat.total_flops

    # Pruning saves relatively more on the planar matrix at Pz=1.
    red = {name: data[name][(1, False)].w_fact_max
           / data[name][(1, True)].w_fact_max for name in data}
    assert red["K2D5pt4096"] > red["Serena"]

    # Fig. 9 shape invariance: the Pz preference ordering is unchanged.
    for name, grid in data.items():
        order_flat = sorted((1, 4, 16),
                            key=lambda pz: grid[(pz, False)].makespan)
        order_pruned = sorted((1, 4, 16),
                              key=lambda pz: grid[(pz, True)].makespan)
        assert order_flat == order_pruned
