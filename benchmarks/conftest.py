"""Shared benchmark configuration.

Every benchmark prints its paper-comparison table to stdout (run with
``pytest benchmarks/ --benchmark-only -s`` to see them) and asserts the
qualitative claims — who wins, by roughly what factor, where crossovers
fall. Set ``REPRO_SCALE=tiny|small|medium`` to trade fidelity for speed
(default: small, minutes for the full suite).
"""

import os

import pytest


def pytest_collection_modifyitems(items):
    """Tag every benchmark with the registered ``bench`` marker so
    ``pytest -m 'not bench'`` / ``-m bench`` can select across the whole
    tree without per-file decorators."""
    for item in items:
        if item.fspath and item.fspath.basename.startswith("bench_"):
            item.add_marker(pytest.mark.bench)


def scale() -> str:
    return os.environ.get("REPRO_SCALE", "small")


@pytest.fixture(scope="session")
def repro_scale() -> str:
    return scale()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark's timer.

    The experiments are deterministic simulations — repeating them adds
    information about *harness* speed only, so one round suffices.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
