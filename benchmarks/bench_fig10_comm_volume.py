"""Fig. 10: per-process communication volume, W_fact vs W_red.

Planar (K2D5pt proxy) and non-planar (nlpkkt80 proxy) on 96 and 384
ranks. Reproduced claims:

* W_fact decreases monotonically with Pz on both problems;
* W_red grows ~linearly with Pz and is far smaller for the planar matrix
  (small separators) than for nlpkkt80;
* the 3D algorithm reduces total per-process volume by ~3-4.7x (planar)
  and ~2.5-3.7x (non-planar) at its best Pz;
* for nlpkkt80 on 96 ranks, W_red's growth erodes the total-volume gain
  between Pz=8 and Pz=16 (the paper's crossover remark).
"""

import numpy as np

from benchmarks.conftest import run_once, scale
from repro.experiments.fig10 import fig10_text, run_fig10


def test_fig10_comm_volume(benchmark):
    series = run_once(benchmark, lambda: run_fig10(scale=scale()))
    print()
    print(fig10_text(series))

    by = {(s.matrix, s.P): s for s in series}

    for s in series:
        # W_fact monotonically decreasing in Pz.
        assert all(a >= b for a, b in zip(s.w_fact_bytes, s.w_fact_bytes[1:])), \
            f"{s.matrix} P={s.P}: W_fact not decreasing"
        # W_red grows with Pz.
        assert all(a <= b for a, b in zip(s.w_red_bytes, s.w_red_bytes[1:])), \
            f"{s.matrix} P={s.P}: W_red not growing"
        # Total volume reduced at the best Pz by at least 2x.
        best = min(s.w_total_bytes)
        assert s.w_total_bytes[0] / best > 2.0, \
            f"{s.matrix} P={s.P}: total volume reduction too small"

    # Planar reduction factor exceeds non-planar at each P (paper: 3-4.7x
    # vs 2.5-3.7x).
    for P in (96, 384):
        planar = by[("K2D5pt4096", P)]
        nonpl = by[("nlpkkt80", P)]
        planar_red = planar.w_total_bytes[0] / min(planar.w_total_bytes)
        nonpl_red = nonpl.w_total_bytes[0] / min(nonpl.w_total_bytes)
        assert planar_red > nonpl_red

    # Reduction traffic is a much larger share of the total for nlpkkt80
    # than for the planar matrix at Pz=16.
    for P in (96, 384):
        planar = by[("K2D5pt4096", P)]
        nonpl = by[("nlpkkt80", P)]
        planar_share = planar.w_red_bytes[-1] / planar.w_total_bytes[-1]
        nonpl_share = nonpl.w_red_bytes[-1] / nonpl.w_total_bytes[-1]
        assert nonpl_share > planar_share

    # nlpkkt80 on 96 ranks: diminishing returns from Pz=8 to Pz=16 — the
    # W_red increase eats most of the W_fact decrease.
    s = by[("nlpkkt80", 96)]
    gain_8 = s.w_total_bytes[0] / s.w_total_bytes[3]
    gain_16 = s.w_total_bytes[0] / s.w_total_bytes[4]
    assert gain_16 < 1.25 * gain_8, "expected W_total flattening at Pz=16"

    # W_red scales "almost linearly" in Pz (the paper's words); Eq. (10)
    # is Pz*log(Pz), whose fitted slope over Pz=2..16 is ~1.67, so accept
    # slopes in [0.6, 2.1].
    for s in series:
        pz = np.array(s.pz[1:], dtype=float)
        red = np.array(s.w_red_bytes[1:], dtype=float)
        slope = np.polyfit(np.log(pz), np.log(red), 1)[0]
        assert 0.6 < slope < 2.1, f"{s.matrix} P={s.P}: W_red slope {slope}"
