"""Extension bench: 3D Cholesky (paper Section VII's proposed variant).

The paper closes by asserting its replication + tree-forest principles
"could be applied to other variants of sparse factorization, such as
Cholesky". This bench substantiates that: on the SPD members of the test
suite, the Cholesky engine plugged into the *same* Algorithm 1 schedule

* shows the same normalized-time shape across Pz as LU (planar matrices
  keep gaining, the non-planar brick saturates),
* at half the flops, ~half the factor storage and half the ancestor-
  reduction traffic of LU on identical structure.
"""

from benchmarks.conftest import run_once, scale
from repro.analysis import FactorizationMetrics, format_table
from repro.cholesky import factor_chol_3d
from repro.comm import Machine, ProcessGrid3D, Simulator
from repro.experiments.harness import PreparedMatrix
from repro.experiments.matrices import paper_suite
from repro.lu3d import factor_3d

PZ_VALUES = (1, 2, 4, 8, 16)
P = 96
SPD_PROXIES = ("K2D5pt4096", "Serena")  # grid Laplacians: SPD by construction


def _run(pm: PreparedMatrix, pz: int, engine: str) -> FactorizationMetrics:
    grid3 = ProcessGrid3D.from_total(P, pz)
    tf = pm.partition(pz)
    sim = Simulator(grid3.size, Machine.edison_like())
    if engine == "cholesky":
        factor_chol_3d(pm.sf, tf, grid3, sim, numeric=False)
    else:
        factor_3d(pm.sf, tf, grid3, sim, numeric=False)
    return FactorizationMetrics.from_simulator(sim)


def test_cholesky_extension(benchmark):
    def run():
        out = {}
        suite = {tm.name: tm for tm in paper_suite(scale())}
        for name in SPD_PROXIES:
            pm = PreparedMatrix(suite[name])
            out[name] = {
                eng: [_run(pm, pz, eng) for pz in PZ_VALUES]
                for eng in ("lu", "cholesky")
            }
        return out

    data = run_once(benchmark, run)

    rows = []
    for name, engines in data.items():
        for eng, ms in engines.items():
            base = ms[0].makespan
            for pz, m in zip(PZ_VALUES, ms):
                rows.append([name, eng, pz, m.makespan / base,
                             m.total_flops, m.w_red_max,
                             m.mem_resident_total])
    print()
    print(format_table(
        ["matrix", "engine", "Pz", "T/T2D", "flops", "W_red", "mem"],
        rows, title=f"Extension — 3D Cholesky vs 3D LU, P={P} ranks"))

    for name, engines in data.items():
        lu, ch = engines["lu"], engines["cholesky"]
        # Half the arithmetic, ~half the storage, ~half the reduction, at
        # every Pz.
        for m_lu, m_ch in zip(lu, ch):
            assert m_ch.total_flops < 0.6 * m_lu.total_flops
            assert m_ch.mem_resident_total < 0.65 * m_lu.mem_resident_total
        # Aggregate reduction traffic halves (the max-rank value can tie
        # when a single L-panel block — identical in both variants — sets
        # the critical rank at small Pz).
        for m_lu, m_ch in zip(lu[1:], ch[1:]):
            assert m_ch.w_red_mean < 0.7 * m_lu.w_red_mean

        # Same 3D-speedup shape: the Pz ranking of Cholesky matches LU's
        # direction — best Pz > 1, and planar keeps improving to Pz=16.
        t_lu = [m.makespan for m in lu]
        t_ch = [m.makespan for m in ch]
        assert min(t_ch) < t_ch[0], f"{name}: Cholesky gains nothing from 3D"
        best_lu = PZ_VALUES[t_lu.index(min(t_lu))]
        best_ch = PZ_VALUES[t_ch.index(min(t_ch))]
        assert (best_ch >= best_lu / 2) and (best_ch <= best_lu * 2), (
            f"{name}: optimal Pz diverges between variants "
            f"(LU {best_lu}, Cholesky {best_ch})")
