"""Resilience bench: fault-free overhead guardrails + recovery trade-off.

Two claims are asserted, both cheap enough for the smoke gate:

* **Zero-cost when off** — a run through the monitored resilient walk
  whose faults never fire books *bit-identical* ledgers to the plain
  driver, and its factors match to 1e-12. The resilience subsystem must
  cost nothing unless it is actually used.
* **z-replica beats restart on overhead** — for a single-grid crash at
  an ancestor level with checkpointing off, global restart replays
  *every* grid's work from scratch while z-replica replays only the
  crashed grid's subtree from the surviving sibling replicas, so the
  z-replica run's total overhead (rank-seconds) must be strictly
  smaller. Both policies must produce factors within 1e-12 of the
  fault-free run and report nonzero finite overhead.

Records the measured overhead split in ``BENCH_resilience.json``.
"""

import json
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once, scale
from repro.analysis import format_resilience_stats, format_table
from repro.comm import ProcessGrid3D, Simulator
from repro.comm.simulator import COMPUTE_KINDS, PHASES
from repro.lu2d.factor2d import FactorOptions
from repro.lu3d import factor_3d
from repro.resilience import Fault, FaultPlan
from repro.sparse import grid2d_5pt
from repro.symbolic import symbolic_factorize
from repro.tree import greedy_partition

PZ = 4
CONFIGS = {"tiny": 16, "small": 28, "medium": 40}
OUT = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"


def _prepare(nx: int):
    A, geom = grid2d_5pt(nx)
    sf = symbolic_factorize(A, geom, leaf_size=16)
    tf = greedy_partition(sf, PZ)
    return sf, tf


def _run(sf, tf, options=None):
    grid3 = ProcessGrid3D(2, 2, PZ)
    sim = Simulator(grid3.size)
    res = factor_3d(sf, tf, grid3, sim, numeric=True, options=options)
    return sim, res


def _ledgers(sim) -> dict:
    out = {"clock": sim.clock.tolist()}
    for k in COMPUTE_KINDS:
        out[f"t_compute:{k}"] = sim.t_compute[k].tolist()
    for p in PHASES:
        out[f"words_sent:{p}"] = sim.words_sent[p].tolist()
        out[f"msgs_sent:{p}"] = sim.msgs_sent[p].tolist()
    return out


def test_resilience_overhead(benchmark):
    nx = CONFIGS[scale()]
    sf, tf = _prepare(nx)

    def experiment():
        clean_sim, clean_res = _run(sf, tf)
        F0 = clean_res.factors().to_dense()

        # Monitored walk, nothing fires: must be free.
        armed = FactorOptions(
            fault_plan=FaultPlan((Fault("crash", grid=99),)))
        idle_sim, idle_res = _run(sf, tf, options=armed)
        assert _ledgers(idle_sim) == _ledgers(clean_sim), \
            "monitored walk with no fired faults perturbed the ledgers"
        assert float(np.abs(idle_res.factors().to_dense() - F0).max()) \
            <= 1e-12

        # One ancestor-level grid crash under each policy (checkpointing
        # off, so restart pays the full replay-from-scratch price).
        crash = FaultPlan((Fault("crash", grid=0, level=1),))
        rows, recs = [], {}
        zstats = None
        for policy in ("restart", "z-replica"):
            sim, res = _run(sf, tf, options=FactorOptions(
                fault_plan=crash, recovery=policy))
            st = res.resilience
            if policy == "z-replica":
                zstats = st
            err = float(np.abs(res.factors().to_dense() - F0).max())
            assert err <= 1e-12, (policy, err)
            assert st.crashes == 1
            assert st.overhead_seconds > 0
            assert np.isfinite(st.overhead_seconds)
            recs[policy] = {
                "makespan": sim.makespan,
                "overhead_seconds": st.overhead_seconds,
                "overhead_pct": st.overhead_pct,
                "lost_work_seconds": st.lost_work_seconds,
                "recovery_compute_seconds": st.recovery_compute_seconds,
                "recovery_words": st.recovery_words,
                "checkpoints_taken": st.checkpoints_taken,
            }
            rows.append([policy, sim.makespan * 1e3,
                         st.overhead_seconds, st.overhead_pct,
                         st.checkpoints_taken])
        # Localized recovery must beat the global rollback on aggregate
        # overhead: restart re-executes every grid, z-replica one grid.
        assert recs["z-replica"]["overhead_seconds"] < \
            recs["restart"]["overhead_seconds"], \
            "z-replica recovery overhead not below global restart's"
        print()
        print(format_table(
            ["policy", "T [ms]", "overhead [s]", "overhead %", "ckpts"],
            rows, title=f"single grid crash at level 1 (nx={nx}, pz={PZ})"))
        print(format_resilience_stats(zstats))
        return {"nx": nx, "pz": PZ,
                "clean_makespan": clean_sim.makespan, "policies": recs}

    record = run_once(benchmark, experiment)
    OUT.write_text(json.dumps(record, indent=2))
    print(f"\nrecorded -> {OUT.name}")
