"""Fig. 9 (upper): normalized factorization time across Pz on 96 ranks.

The paper's 16-node plot (96 MPI ranks, 4 threads each). Reproduced
shapes:

* every planar matrix speeds up with growing Pz, best at large Pz;
* non-planar matrices peak at moderate Pz;
* the extremely non-planar matrices (Serena, nlpkkt80) *lose* at Pz=16
  relative to their best Pz because T_scu inflates on the shrunken 2D
  grid (the paper's up-to-4x slowdown effect);
* T_comm decreases with Pz for planar matrices.
"""

from benchmarks.conftest import run_once, scale
from repro.experiments.fig9 import fig9_text, headline_speedups, run_fig9

P = 96


def test_fig9_16nodes(benchmark):
    results = run_once(benchmark, lambda: run_fig9(P=P, scale=scale()))
    print()
    print(fig9_text(results, P))
    print("headline best-config speedups:", headline_speedups(results))

    by = {r.name: r for r in results}

    # Planar matrices: 3D wins, monotone improvement into large Pz.
    for fm in results:
        if fm.planar:
            assert fm.best_speedup > 1.5, f"{fm.name}: planar gain too small"
            assert fm.t_norm[-1] < fm.t_norm[0], \
                f"{fm.name}: planar should still win at Pz=16"

    # Non-planar matrices: some gain at moderate Pz...
    for fm in results:
        if not fm.planar:
            assert fm.best_speedup > 1.0, f"{fm.name}: no 3D gain at all"

    # ...but the extreme ones retreat at Pz=16: T_scu grows as the 2D grid
    # shrinks (paper Section V-B).
    for name in ("Serena", "nlpkkt80"):
        fm = by[name]
        assert fm.t_scu_norm[-1] > fm.t_scu_norm[0], \
            f"{name}: T_scu should inflate at Pz=16"
        assert fm.speedup_at_max_pz < fm.best_speedup, \
            f"{name}: Pz=16 should not be the optimum on 96 ranks"

    # Planar communication time falls with Pz (the dominant effect).
    for name in ("K2D5pt4096", "S2D9pt3072"):
        fm = by[name]
        assert fm.t_comm_norm[-1] < fm.t_comm_norm[0]

    # Class-level ordering: planar best-case gains exceed non-planar ones.
    heads = headline_speedups(results)
    assert heads["planar"][1] > heads["non-planar"][1]
