"""Robustness: the paper's conclusions under non-uniform networks.

Footnote 1 of the paper concedes that "the network topology and the
underlying MPI implementation may increase the asymptotic complexity" of
its flat α-β analysis. This bench re-runs the core Fig. 9 comparison under
three network models — flat, Edison-like dragonfly, and a 3D torus — and
checks that the *qualitative* conclusions are topology-invariant:

* 3D beats 2D on the planar proxy under every topology;
* the non-planar Pz=16 retreat direction is unchanged;
* per-rank volumes and message counts are bit-identical (topology only
  re-prices messages, the algorithm sends the same ones);
* the non-uniform models genuinely re-price the schedule (times shift in
  either direction — intra-node discounts can outweigh global-hop
  penalties), yet every shape conclusion survives.
"""

from benchmarks.conftest import run_once, scale
from repro.analysis import FactorizationMetrics, format_table
from repro.comm import (
    DragonflyTopology,
    Machine,
    ProcessGrid3D,
    Simulator,
    Torus3D,
)
from repro.experiments.harness import PreparedMatrix
from repro.experiments.matrices import paper_suite
from repro.lu3d import factor_3d

P = 96
TOPOLOGIES = {
    "flat": None,
    "dragonfly": DragonflyTopology(ranks_per_node=6, nodes_per_group=8),
    "torus": Torus3D(6, 4, 4),
}


def _run(pm, pz, topo):
    grid3 = ProcessGrid3D.from_total(P, pz)
    tf = pm.partition(pz)
    sim = Simulator(grid3.size, Machine.edison_like(), topology=topo)
    factor_3d(pm.sf, tf, grid3, sim, numeric=False)
    return FactorizationMetrics.from_simulator(sim)


def test_topology_sensitivity(benchmark):
    def run():
        suite = {tm.name: tm for tm in paper_suite(scale())}
        out = {}
        for name in ("K2D5pt4096", "nlpkkt80"):
            pm = PreparedMatrix(suite[name])
            out[name] = {(tn, pz): _run(pm, pz, topo)
                         for tn, topo in TOPOLOGIES.items()
                         for pz in (1, 8, 16)}
        return out

    data = run_once(benchmark, run)

    rows = []
    for name, grid in data.items():
        for tn in TOPOLOGIES:
            base = grid[(tn, 1)].makespan
            rows.append([name, tn] + [grid[(tn, pz)].makespan / base
                                      for pz in (1, 8, 16)])
    print()
    print(format_table(["matrix", "network", "T(1)", "T(8)/T(1)",
                        "T(16)/T(1)"], rows,
                       title=f"Topology sensitivity — normalized time, P={P}"))

    for name, grid in data.items():
        # Volumes identical across topologies.
        vols = {tn: grid[(tn, 8)].w_total_max for tn in TOPOLOGIES}
        assert len(set(vols.values())) == 1
        msgs = {tn: grid[(tn, 8)].msgs_max for tn in TOPOLOGIES}
        assert len(set(msgs.values())) == 1

    for tn in TOPOLOGIES:
        # Planar: 3D wins under every network, monotone to Pz=16.
        k2d = data["K2D5pt4096"]
        assert k2d[(tn, 8)].makespan < k2d[(tn, 1)].makespan
        assert k2d[(tn, 16)].makespan < k2d[(tn, 8)].makespan
        # Non-planar: gains at Pz=8, retreats by Pz=16 (same shape).
        nlp = data["nlpkkt80"]
        assert nlp[(tn, 8)].makespan < nlp[(tn, 1)].makespan
        assert nlp[(tn, 16)].makespan > nlp[(tn, 8)].makespan * 0.95

    # The non-uniform models actually re-price the schedule (times differ
    # from flat — in either direction: with consecutive ranks per node,
    # the dragonfly's intra-node discount can outweigh its global
    # penalty), yet all shape assertions above held.
    for name in data:
        for tn in ("dragonfly", "torus"):
            assert data[name][(tn, 8)].makespan != \
                data[name][("flat", 8)].makespan
