"""Ablation: the lookahead pipeline window (Section II-F).

SuperLU_DIST uses a fixed window of 8-20 supernodes to overlap panel
communication with Schur updates. We sweep the window on the planar proxy
at a communication-bound configuration and check:

* any window > 0 beats the synchronous schedule;
* returns diminish (the paper's reason for capping the window);
* communication *volume* is invariant — pipelining only reorders it;
* peak buffer memory grows with the window (the paper's stated cost).
"""

from benchmarks.conftest import run_once, scale
from repro.analysis.report import format_table
from repro.experiments.harness import PreparedMatrix, run_configuration
from repro.experiments.matrices import paper_suite
from repro.lu2d import FactorOptions

WINDOWS = (0, 2, 8, 32)


def test_lookahead_ablation(benchmark):
    def run():
        suite = {tm.name: tm for tm in paper_suite(scale())}
        pm = PreparedMatrix(suite["K2D5pt4096"])
        out = []
        for w in WINDOWS:
            rec = run_configuration(pm, P=96, pz=1,
                                    options=FactorOptions(lookahead=w))
            m = rec.metrics
            out.append((w, m.makespan, m.w_fact_max, m.mem_peak_max,
                        m.t_comm))
        return out

    results = run_once(benchmark, run)
    print()
    print(format_table(
        ["window", "T[s]", "W_fact", "peak mem", "T_comm[s]"],
        [list(r) for r in results],
        title="Ablation — lookahead window on K2D5pt proxy, 96 ranks (2D)"))

    t = {w: tt for w, tt, *_ in results}
    vol = {w: v for w, _, v, *_ in results}
    mem = {w: m for w, _, _, m, _ in results}

    assert t[8] < t[0], "lookahead=8 should beat synchronous"
    assert t[2] < t[0]
    # Diminishing returns: 8 -> 32 helps far less than 0 -> 8.
    gain_0_8 = t[0] - t[8]
    gain_8_32 = t[8] - t[32]
    assert gain_8_32 < 0.5 * gain_0_8, "expected diminishing returns"
    # Volume invariant under pipelining.
    assert all(abs(vol[w] - vol[0]) / vol[0] < 1e-9 for w in WINDOWS)
    # Buffer cost grows with the window.
    assert mem[32] >= mem[8] >= mem[0]
    assert mem[32] > mem[0]
