"""Beyond the paper: the triangular-solve phase under the 3D layout.

The paper factors in 3D but says nothing about solving there (the
authors' follow-up work addresses 3D triangular solves). Our solve runs
over the factors exactly where Algorithm 1 left them — each supernode on
its home grid — which already inherits tree parallelism: leaf forests
solve concurrently across layers, and only the replicated ancestors
serialize. This bench measures that inheritance:

* the modeled solve time improves with Pz on the planar proxy (leaf-
  dominated work parallelizes across layers);
* per-rank solve communication volume decreases with Pz;
* the solve remains a small fraction of factorization time at every Pz
  (the economics that justify direct solvers);
* solve volume scales linearly in the number of right-hand sides.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.comm import Machine
from repro.experiments.matrices import paper_suite
from repro.solve import SparseLU3D

PZ_VALUES = (1, 2, 4, 8)
P = 16  # numeric mode: keep the grid small and the matrix tiny-scale


def test_solve_phase(benchmark):
    def run():
        tm = {m.name: m for m in paper_suite("tiny")}["K2D5pt4096"]
        out = []
        for pz in PZ_VALUES:
            pxy = P // pz
            px = max(1, int(pxy ** 0.5))
            while pxy % px:
                px -= 1
            solver = SparseLU3D(tm.A, geometry=tm.geometry, px=px,
                                py=pxy // px, pz=pz, leaf_size=tm.leaf_size,
                                max_block=tm.max_block,
                                machine=Machine.edison_like())
            solver.factorize()
            t_fact = solver.sim.makespan
            b = np.ones(tm.A.shape[0])
            t0 = solver.sim.makespan
            w0 = solver.sim.total_words_sent("solve")
            x = solver.solve(b, refine=False)
            t_solve = solver.sim.makespan - t0
            w_solve = solver.sim.words_per_rank("solve").max()
            res = float(np.linalg.norm(tm.A @ x - b))
            out.append((pz, t_fact, t_solve, w_solve, res))
        return out

    rows = run_once(benchmark, run)
    print()
    print(format_table(
        ["Pz", "T_fact [ms]", "T_solve [ms]", "W_solve/rank", "residual"],
        [[pz, tf * 1e3, ts * 1e3, w, r] for pz, tf, ts, w, r in rows],
        title=f"Solve phase under the 3D layout, P={P} ranks (numeric)"))

    by = {pz: (tf, ts, w, r) for pz, tf, ts, w, r in rows}
    # Correct at every Pz.
    assert all(r < 1e-8 for *_, r in rows)
    # Solve time improves from 2D to the best 3D configuration.
    solve_times = {pz: ts for pz, _, ts, _, _ in rows}
    assert min(solve_times[2], solve_times[4], solve_times[8]) \
        < solve_times[1]
    # Per-rank solve volume decreases with Pz.
    vols = [w for _, _, _, w, _ in rows]
    assert vols[-1] < vols[0]
    # Solve stays cheap relative to factorization at every Pz.
    for pz, tf, ts, _, _ in rows:
        assert ts < 0.6 * tf, f"Pz={pz}: solve not cheap ({ts} vs {tf})"
