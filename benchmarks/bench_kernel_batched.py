"""Kernel bench: batched vs per-block Schur update, numeric and cost-only.

GLU3.0's central observation is that supernodal sparse LU spends its time
in thousands of small Schur GEMMs whose fixed per-call overhead dwarfs the
arithmetic; batching them into panel-level products is the decisive
kernel-level win. This bench times the repo's two Schur-update paths —
the per-block loop (one GEMM + one simulator event per (i, j) pair) and
the batched kernel (:func:`repro.lu2d.batched.batched_schur_update`: one
gathered U panel, row-blocked GEMMs, scatter, one ``compute_batch``) — on
a dense trailing-matrix supernodal profile, the long-panel regime at the
top of the elimination tree where the driver's hybrid dispatch actually
selects batching (``FactorOptions.batch_min_pairs``).

Both paths must produce bit-identical simulator ledgers and factors equal
within 1e-12 (asserted here, not just in the unit tests), so the speedup
is a pure kernel-engineering result, not a model change. The measured
record is written to ``BENCH_kernels.json`` at the repo root so the perf
trajectory is tracked from PR 1 onward.
"""

import json
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once, scale
from repro.comm import ProcessGrid2D, Simulator
from repro.lu2d.batched import batched_schur_update
from repro.sparse.blockmatrix import BlockLayout

# (nb blocks, block size): ~nb^3/3 block pairs with panels of length
# nb-1 .. 1 — the dense trailing-matrix profile.
CONFIGS = {"tiny": (24, 12), "small": (48, 12), "medium": (72, 12)}
# (numeric, cost-only) minimum speedups. At tiny the workload is too
# small to amortize gather overhead fully, so the smoke bar is only
# "batched must not lose".
THRESHOLDS = {"tiny": (1.0, 1.2), "small": (2.0, 1.5), "medium": (2.0, 1.5)}
REPS = 3  # best-of: one-shot timings jitter with machine load
OUT = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def _workload(nb: int, s: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    inv = 1.0 / (nb * s)  # keep repeated updates bounded
    return {(i, j): rng.random((s, s)) * inv
            for i in range(nb) for j in range(nb)}


def _run(nb: int, s: int, grid: ProcessGrid2D, numeric: bool, batched: bool):
    """One pass over all supernodes; returns (seconds, sim, data)."""
    data = _workload(nb, s)
    store = data if numeric else None
    sizes = BlockLayout(np.arange(nb + 1) * s).sizes()
    sim = Simulator(grid.size)
    t0 = time.perf_counter()
    for k in range(nb - 1):
        lp = up = np.arange(k + 1, nb)
        if batched:
            batched_schur_update(store, k, lp, up, sizes, grid, sim)
        else:
            # Verbatim the driver's per-block loop path.
            sk = int(sizes[k])
            for i in lp:
                i = int(i)
                si = int(sizes[i])
                Lik = store[(i, k)] if numeric else None
                for j in up:
                    j = int(j)
                    sj = int(sizes[j])
                    o = grid.owner(i, j)
                    if numeric:
                        store[(i, j)] -= Lik @ store[(k, j)]
                    sim.compute(o, 2.0 * si * sk * sj, "schur",
                                n_block_updates=1)
    return time.perf_counter() - t0, sim, data


def _best(nb, s, grid, numeric, batched):
    runs = [_run(nb, s, grid, numeric, batched) for _ in range(REPS)]
    return min(r[0] for r in runs), runs[-1][1], runs[-1][2]


def _ledgers(sim: Simulator) -> list[np.ndarray]:
    return ([sim.clock] + [sim.flops[k] for k in sorted(sim.flops)]
            + [sim.t_compute[k] for k in sorted(sim.t_compute)])


def test_kernel_batched(benchmark):
    sc = scale()
    nb, s = CONFIGS[sc]
    need_num, need_cost = THRESHOLDS[sc]
    grid = ProcessGrid2D(2, 2)

    def experiment():
        out = {}
        for mode, numeric in (("numeric", True), ("cost_only", False)):
            t_loop, sim_l, data_l = _best(nb, s, grid, numeric, False)
            t_bat, sim_b, data_b = _best(nb, s, grid, numeric, True)
            for a, b in zip(_ledgers(sim_l), _ledgers(sim_b)):
                assert np.array_equal(a, b), "batched ledgers diverged"
            diff = 0.0
            if numeric:
                diff = max(np.abs(data_l[key] - data_b[key]).max()
                           for key in data_l)
                assert diff < 1e-12, f"factors diverged: {diff}"
            out[mode] = {"loop_s": round(t_loop, 6),
                         "batched_s": round(t_bat, 6),
                         "speedup": round(t_loop / t_bat, 3),
                         "max_abs_diff": diff}
        return out

    rec = run_once(benchmark, experiment)
    record = {
        "bench": "bench_kernel_batched",
        "scale": sc,
        "workload": {"nb_blocks": nb, "block_size": s, "grid": "2x2",
                     "block_pairs": int(sum((nb - k - 1) ** 2
                                            for k in range(nb - 1))),
                     "reps_best_of": REPS},
        "numeric": rec["numeric"],
        "cost_only": rec["cost_only"],
        "ledgers_identical": True,
        "thresholds": {"numeric": need_num, "cost_only": need_cost},
    }
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(f"batched Schur kernel @ {sc} (nb={nb}, s={s}, best of {REPS}):")
    for mode in ("numeric", "cost_only"):
        r = rec[mode]
        print(f"  {mode:9s}: loop {r['loop_s']:.3f}s  batched "
              f"{r['batched_s']:.3f}s  -> {r['speedup']:.2f}x")
    print(f"  record written to {OUT.name}")

    assert rec["numeric"]["speedup"] >= need_num, \
        f"numeric batched speedup {rec['numeric']['speedup']} < {need_num}"
    assert rec["cost_only"]["speedup"] >= need_cost, \
        f"cost-only batched speedup {rec['cost_only']['speedup']} < {need_cost}"
