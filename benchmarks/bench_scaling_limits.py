"""Strong-scaling limits (abstract / Section V-F headline claim).

    "We observe that our new algorithm can use up to 16x more processors
    for the same problem size with continued time reduction, which
    confirms its potential to strongly scale."

We sweep total ranks P from 24 to 1536 on the planar proxy and a
non-planar proxy. Checks: the 2D baseline's time curve saturates (stops
improving) at some P*, while the best-3D curve keeps improving well past
it — by at least 4x more ranks for the planar matrix at proxy scale (the
paper's 16x is at 400x our n, where the 2D baseline drowns sooner) — and
the best Pz grows with P.
"""

from benchmarks.conftest import run_once, scale
from repro.experiments.harness import PreparedMatrix
from repro.experiments.matrices import paper_suite
from repro.experiments.scaling import run_scaling, scaling_text


def test_scaling_limits(benchmark):
    def run():
        suite = {tm.name: tm for tm in paper_suite(scale())}
        return {name: run_scaling(PreparedMatrix(suite[name]))
                for name in ("K2D5pt4096", "Serena")}

    curves = run_once(benchmark, run)
    print()
    for curve in curves.values():
        print(scaling_text(curve))
        print()

    planar = curves["K2D5pt4096"]
    nonpl = curves["Serena"]

    # 3D beats 2D at every P for the planar matrix.
    assert all(t3 <= t2 for t2, t3 in zip(planar.t_2d, planar.t_3d))

    # The 2D baseline's useful scaling (>=15% gain per doubling) ends
    # strictly before the sweep's end...
    assert planar.saturation_2d < planar.P[-1]
    # ...while 3D keeps using at least 8x more ranks productively on the
    # planar problem (the paper's headline is 16x at 400x our n) and at
    # least 2x on the non-planar one.
    assert planar.extra_scaling_factor >= 8.0, (
        f"planar extra scaling only {planar.extra_scaling_factor}x")
    assert nonpl.extra_scaling_factor >= 2.0

    # The best Pz is non-decreasing in P (more ranks -> more layers), up
    # to one step of sweep noise.
    violations = sum(a > b for a, b in zip(planar.best_pz, planar.best_pz[1:]))
    assert violations <= 1

    # Headline: at the largest P, 3D's advantage over 2D is large.
    assert planar.t_2d[-1] / planar.t_3d[-1] > 3.0
