"""Ledger-validated autotuning benchmark, recorded in ``BENCH_tune.json``.

Extends the Table II asymptotics benches with the tuner's own claim: on
each matrix family, :func:`repro.tune.autotune_grid` enumerates every
divisor factorization of ``P`` crossed with the 2.5D ancestor-replication
factor, ranks candidates with the sigma-seeded closed forms, validates
the leaders in the simulator, and must land on a configuration whose
*measured* cost-only critical-path words beat the naive near-square
``Pz = 1`` grid. The record keeps predicted-vs-measured words for every
validated candidate — the crossover datum a model-error plot needs.

Hard bars:

* on the non-planar family the tuned configuration moves >= 1.3x fewer
  measured words than the naive 2D grid (the acceptance bar: depth +
  replication must pay off exactly where Table II says they do);
* on the planar family the tuned configuration never loses to naive
  (>= 1.0x) — planar problems still want depth, just a different one;
* every validated candidate carries both a prediction and a measurement,
  so the model-error column is never silently empty.
"""

import json
from pathlib import Path

from benchmarks.conftest import run_once, scale
from repro.sparse import grid2d_5pt, grid3d_7pt
from repro.tune import autotune_grid

#: Per-scale workloads: lattice edges, ranks, leaf, simulator budget.
CONFIGS = {
    "tiny": {"planar_nx": 20, "brick_nx": 8, "P": 16, "leaf": 32,
             "budget": 4},
    "small": {"planar_nx": 32, "brick_nx": 10, "P": 16, "leaf": 32,
              "budget": 6},
    "medium": {"planar_nx": 48, "brick_nx": 12, "P": 32, "leaf": 32,
               "budget": 8},
}
MIN_NONPLANAR_IMPROVEMENT = 1.3
MIN_PLANAR_IMPROVEMENT = 1.0
OUT = Path(__file__).resolve().parent.parent / "BENCH_tune.json"


def _case(name: str, A, geom, P: int, leaf: int, budget: int) -> dict:
    res = autotune_grid(A, P, geometry=geom, leaf_size=leaf, budget=budget)
    validated = [r for r in res.candidates if r.validated]
    assert res.chosen_result.validated, "winner must be measured, not modeled"
    for r in validated:
        assert r.model_error is not None, r.candidate.label
    return {
        "matrix": name,
        "n": int(A.shape[0]),
        "P": P,
        "sigma": round(res.sigma, 4),
        "classification": res.classification,
        "chosen": res.chosen.label,
        "baseline": res.baseline.candidate.label,
        "simulator_runs": res.evaluations,
        "candidates_enumerated": len(res.candidates),
        "measured_improvement": round(res.measured_improvement, 3),
        "predicted_improvement": round(res.predicted_improvement, 3),
        "model_error_geomean": round(res.model_error_geomean, 3),
        "validated": [
            {"candidate": r.candidate.label,
             "predicted_words": r.predicted_words,
             "measured_words": r.measured_words,
             "measured_makespan": r.measured_makespan,
             "model_error": r.model_error}
            for r in validated
        ],
    }


def test_autotune_beats_naive(benchmark):
    sc = scale()
    cfg = CONFIGS[sc]

    def experiment():
        A_p, g_p = grid2d_5pt(cfg["planar_nx"])
        A_b, g_b = grid3d_7pt(cfg["brick_nx"])
        return [
            _case(f"grid2d_5pt({cfg['planar_nx']})", A_p, g_p,
                  cfg["P"], cfg["leaf"], cfg["budget"]),
            _case(f"grid3d_7pt({cfg['brick_nx']})", A_b, g_b,
                  cfg["P"], cfg["leaf"], cfg["budget"]),
        ]

    cases = run_once(benchmark, experiment)
    planar, nonplanar = cases
    assert nonplanar["measured_improvement"] >= MIN_NONPLANAR_IMPROVEMENT, \
        f"non-planar tuned config only {nonplanar['measured_improvement']}x " \
        f"vs naive {nonplanar['baseline']} (need " \
        f">={MIN_NONPLANAR_IMPROVEMENT}x)"
    assert planar["measured_improvement"] >= MIN_PLANAR_IMPROVEMENT, \
        f"planar tuned config lost to naive: " \
        f"{planar['measured_improvement']}x"
    record = {
        "bench": "bench_autotune",
        "scale": sc,
        "threshold_nonplanar_improvement": MIN_NONPLANAR_IMPROVEMENT,
        "threshold_planar_improvement": MIN_PLANAR_IMPROVEMENT,
        "skipped": None,
        "cases": cases,
    }
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    print()
    for c in cases:
        print(f"{c['matrix']:>16} ({c['classification']}): chose "
              f"{c['chosen']} — {c['measured_improvement']}x measured words "
              f"vs naive {c['baseline']} after {c['simulator_runs']} runs "
              f"(model error geomean {c['model_error_geomean']})")
