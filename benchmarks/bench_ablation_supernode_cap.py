"""Ablation: the supernode size cap (max_block, SuperLU's maxsup analogue).

DESIGN.md design decision 1: separators are split into chains of blocks
of at most ``max_block`` columns. Without a cap, a top separator is one
giant block whose diagonal factorization serializes on a single rank and
whose panels distribute lumpily; with too small a cap, per-message and
per-block overheads (the latency term) dominate. The sweep shows the
U-shape and checks that moderate caps beat both extremes on the
non-planar proxy, where separators are largest.
"""

from benchmarks.conftest import run_once, scale
from repro.analysis.report import format_table
from repro.experiments.harness import PreparedMatrix, run_configuration
from repro.experiments.matrices import paper_suite

CAPS = (16, 64, 128, 100000)  # 100000 = effectively uncapped


def test_supernode_cap_ablation(benchmark):
    def run():
        base = {tm.name: tm for tm in paper_suite(scale())}["Serena"]
        out = []
        for cap in CAPS:
            tm = type(base)(**{**base.__dict__, "max_block": cap})
            pm = PreparedMatrix(tm)
            rec = run_configuration(pm, P=96, pz=4)
            m = rec.metrics
            out.append((cap, pm.sf.nb, m.makespan, m.t_scu, m.msgs_max))
        return out

    results = run_once(benchmark, run)
    print()
    print(format_table(
        ["max_block", "#blocks", "T[s]", "T_scu[s]", "max msgs/rank"],
        [list(r) for r in results],
        title="Ablation — supernode cap on Serena proxy, 96 ranks, Pz=4"))

    t = {cap: tt for cap, _, tt, _, _ in results}
    msgs = {cap: mm for cap, *_, mm in results}

    # Moderate caps beat the uncapped giant-separator configuration (whose
    # top-block diagonal factorization serializes on one rank).
    assert min(t[64], t[128]) < t[100000], \
        "capping supernodes should beat monolithic separators"
    # ...and they beat the tiny-cap configuration too: the U-shape.
    assert min(t[64], t[128]) < t[16], \
        "moderate caps should beat the latency-bound tiny cap"
    # Tiny caps explode the per-rank message count (the latency term).
    assert msgs[16] > 2 * msgs[128]
    assert msgs[16] > 2 * msgs[100000]
