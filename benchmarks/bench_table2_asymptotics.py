"""Table II: asymptotic M / W / L scaling of the 2D and 3D algorithms.

Regenerates the paper's asymptotic claims by sweeping n on the planar and
non-planar model problems and fitting log-log exponents of the measured
per-process quantities against the closed-form models.

Pass criterion: every fitted exponent within 0.25 of its model exponent
(the model curves carry log-factors, so exact power-law agreement is not
expected even in theory).
"""

from benchmarks.conftest import run_once
from repro.experiments.table2 import run_table2, table2_text


def test_table2_asymptotics(benchmark):
    rows = run_once(benchmark, run_table2)
    print()
    print(table2_text(rows))

    for r in rows:
        assert r.exponent_error < 0.25, (
            f"{r.problem} {r.algorithm} {r.quantity}: measured exponent "
            f"{r.measured_exponent:.2f} vs model {r.model_exponent:.2f}")

    by = {(r.problem, r.algorithm, r.quantity): r for r in rows}
    # Latency: the 3D algorithm must cut the per-process message count —
    # the paper's O(log n) planar / O(n^{1/3}) non-planar factors show up
    # as a lower measured curve, not just a lower exponent.
    for problem in ("planar", "non-planar"):
        l2 = by[(problem, "2D", "L")].measured
        l3 = by[(problem, "3D", "L")].measured
        assert l3[-1] < l2[-1], f"{problem}: 3D latency not reduced"
    # Communication: 3D (Pz=4) must move fewer words per process at the
    # largest size on both problems.
    for problem in ("planar", "non-planar"):
        w2 = by[(problem, "2D", "W")].measured
        w3 = by[(problem, "3D", "W")].measured
        assert w3[-1] < w2[-1], f"{problem}: 3D volume not reduced"
    # Memory: the 3D overhead is a constant factor, not a different power.
    for problem in ("planar", "non-planar"):
        m2 = by[(problem, "2D", "M")]
        m3 = by[(problem, "3D", "M")]
        assert abs(m2.measured_exponent - m3.measured_exponent) < 0.2
