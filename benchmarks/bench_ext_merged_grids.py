"""Extension bench: merged-grid ancestor factorization (Section VII).

The paper's closing idea: at ancestor levels, merge the idle 2D grids of
each forest's range into one larger grid instead of factoring on the home
grid alone. The predicted payoff is precisely where the standard 3D
algorithm retreats — strongly non-planar matrices at large Pz, whose
T_scu inflates when the 2D grid shrinks (Fig. 9's Serena/nlpkkt80).

Checks:

* for the non-planar proxies at Pz in {8, 16}, the merged schedule cuts
  T_scu substantially and the total modeled time meaningfully;
* for the planar proxy the two schedules are within a few percent (small
  separators: nothing to merge for);
* merging removes (most of) the non-planar Pz=16 retreat: merged
  T(Pz=16) <= merged T(Pz=8) * 1.1;
* arithmetic is identical — merging only re-partitions ownership.
"""

import numpy as np

from benchmarks.conftest import run_once, scale
from repro.analysis import FactorizationMetrics, format_table
from repro.comm import Machine, ProcessGrid3D, Simulator
from repro.experiments.harness import PreparedMatrix
from repro.experiments.matrices import paper_suite
from repro.lu3d import factor_3d
from repro.lu3d.merged import factor_3d_merged

P = 96
PZ_VALUES = (4, 8, 16)
NAMES = ("K2D5pt4096", "Serena", "nlpkkt80")


def _run(pm, pz, merged):
    grid3 = ProcessGrid3D.from_total(P, pz)
    tf = pm.partition(pz)
    sim = Simulator(grid3.size, Machine.edison_like())
    if merged:
        factor_3d_merged(pm.sf, tf, grid3, sim)
    else:
        factor_3d(pm.sf, tf, grid3, sim, numeric=False)
    return FactorizationMetrics.from_simulator(sim)


def test_merged_grids_extension(benchmark):
    def run():
        suite = {tm.name: tm for tm in paper_suite(scale())}
        return {name: {(pz, merged): _run(PreparedMatrix(suite[name]), pz,
                                          merged)
                       for pz in PZ_VALUES for merged in (False, True)}
                for name in NAMES}

    data = run_once(benchmark, run)

    rows = []
    for name, grid in data.items():
        for pz in PZ_VALUES:
            std, mrg = grid[(pz, False)], grid[(pz, True)]
            rows.append([name, pz, std.makespan * 1e3, mrg.makespan * 1e3,
                         std.makespan / mrg.makespan,
                         std.t_scu * 1e3, mrg.t_scu * 1e3])
    print()
    print(format_table(
        ["matrix", "Pz", "T std [ms]", "T merged [ms]", "gain",
         "Tscu std", "Tscu merged"], rows,
        title=f"Extension — merged-grid ancestors, P={P} ranks"))

    for name, grid in data.items():
        for pz in PZ_VALUES:
            std, mrg = grid[(pz, False)], grid[(pz, True)]
            # Identical arithmetic.
            assert np.isclose(std.total_flops, mrg.total_flops)

    # Non-planar at large Pz: merging wins clearly.
    for name in ("Serena", "nlpkkt80"):
        std16 = data[name][(16, False)]
        mrg16 = data[name][(16, True)]
        assert std16.makespan / mrg16.makespan > 1.2, \
            f"{name}: merged grids should pay off at Pz=16"
        assert mrg16.t_scu < 0.75 * std16.t_scu

        # The Pz=8 -> 16 retreat shrinks or disappears.
        std8 = data[name][(8, False)]
        mrg8 = data[name][(8, True)]
        std_retreat = std16.makespan / std8.makespan
        mrg_retreat = mrg16.makespan / mrg8.makespan
        assert mrg_retreat < std_retreat
        assert mrg_retreat < 1.10, \
            f"{name}: merged Pz=16 should not retreat ({mrg_retreat:.2f})"

    # Planar: merging is at worst a small perturbation.
    for pz in PZ_VALUES:
        std = data["K2D5pt4096"][(pz, False)]
        mrg = data["K2D5pt4096"][(pz, True)]
        assert abs(std.makespan - mrg.makespan) < 0.15 * std.makespan
