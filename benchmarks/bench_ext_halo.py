"""Extension bench: HALO accelerator offload, alone and combined with 3D.

Section VII positions HALO (the authors' GPU/Phi offload algorithm) as
complementary to 3D: "HALO works much better for matrices that have large
dense blocks; while 3D sparse LU factorization performs better for
sparser matrices with small dense separators. We plan to add HALO to the
3D algorithm … by combining the two, we can potentially improve
performance across a wider spectrum of matrices."

We model HALO as threshold-based Schur-GEMM offload to per-rank
accelerators and run the 2x2 design {2D, 3D} x {host, +accel} on a
sparse planar matrix and a dense-blocked non-planar one:

* accelerators help the dense-blocked matrix much more than the sparse
  one (the paper's first claim);
* the 3D algorithm helps the sparse matrix much more than accelerators
  do (the second claim);
* the combination is at least as good as either technique alone on both
  matrices (the "wider spectrum" claim).
"""

from benchmarks.conftest import run_once, scale
from repro.analysis import FactorizationMetrics, format_table
from repro.comm import Machine, ProcessGrid3D, Simulator
from repro.comm.accelerator import Accelerator
from repro.experiments.harness import PreparedMatrix
from repro.experiments.matrices import paper_suite
from repro.lu3d import factor_3d

P = 96
PZ_3D = 8
SPARSE, DENSE = "Ecology1", "Serena"


def _run(pm, pz, accel):
    grid3 = ProcessGrid3D.from_total(P, pz)
    sim = Simulator(grid3.size, Machine.edison_like())
    if accel:
        sim.attach_accelerator(Accelerator())
    factor_3d(pm.sf, pm.partition(pz), grid3, sim, numeric=False)
    offloaded = int(sim.offloaded_updates.sum()) if accel else 0
    return FactorizationMetrics.from_simulator(sim), offloaded


def test_halo_extension(benchmark):
    def run():
        suite = {tm.name: tm for tm in paper_suite(scale())}
        out = {}
        for name in (SPARSE, DENSE):
            pm = PreparedMatrix(suite[name])
            out[name] = {(pz, accel): _run(pm, pz, accel)
                         for pz in (1, PZ_3D) for accel in (False, True)}
        return out

    data = run_once(benchmark, run)

    rows = []
    for name, grid in data.items():
        base = grid[(1, False)][0].makespan
        for (pz, accel), (m, noff) in sorted(grid.items()):
            rows.append([name, pz, "yes" if accel else "no",
                         m.makespan * 1e3, base / m.makespan, noff])
    print()
    print(format_table(
        ["matrix", "Pz", "accel", "T [ms]", "speedup vs 2D-host",
         "#offloaded"], rows,
        title=f"Extension — HALO offload x 3D algorithm, P={P} ranks"))

    def t(name, pz, accel):
        return data[name][(pz, accel)][0].makespan

    # Claim 1: accelerators pay off on dense-blocked matrices, not sparse.
    halo_gain_sparse = t(SPARSE, 1, False) / t(SPARSE, 1, True)
    halo_gain_dense = t(DENSE, 1, False) / t(DENSE, 1, True)
    assert halo_gain_dense > halo_gain_sparse
    assert halo_gain_sparse < 1.05  # nothing above threshold to offload
    noff_sparse = data[SPARSE][(1, True)][1]
    noff_dense = data[DENSE][(1, True)][1]
    assert noff_dense > 10 * max(noff_sparse, 1)

    # Claim 2: the 3D algorithm pays off most on the sparse matrix.
    td_gain_sparse = t(SPARSE, 1, False) / t(SPARSE, PZ_3D, False)
    td_gain_dense = t(DENSE, 1, False) / t(DENSE, PZ_3D, False)
    assert td_gain_sparse > td_gain_dense
    assert td_gain_sparse > halo_gain_sparse

    # Claim 3: combination at least matches the best single technique.
    for name in (SPARSE, DENSE):
        best_single = min(t(name, PZ_3D, False), t(name, 1, True))
        assert t(name, PZ_3D, True) <= best_single * 1.02, \
            f"{name}: 3D+HALO should not lose to the best single technique"
