"""Fig. 11: relative memory overhead of 3D over 2D (percent).

Reproduced claims:

* overhead grows with Pz for every matrix (replicating more ancestors);
* planar matrices stay cheap (paper: ~30% for K2D5pt4096 at Pz=16) —
  small separators replicate little;
* nlpkkt80 is the extreme (paper: ~200% at Pz=16): no good separators;
* across the suite the Pz=16 overhead spans a wide range (paper: 18-245%).
"""

from benchmarks.conftest import run_once, scale
from repro.experiments.fig11 import fig11_text, run_fig11

P = 96


def test_fig11_memory_overhead(benchmark):
    series = run_once(benchmark, lambda: run_fig11(P=P, scale=scale()))
    print()
    print(fig11_text(series, P))

    by = {s.matrix: s for s in series}

    # Overhead grows with Pz for every matrix.
    for s in series:
        assert all(a <= b + 1e-9 for a, b in
                   zip(s.overhead_pct, s.overhead_pct[1:])), \
            f"{s.matrix}: overhead not increasing with Pz"
        assert s.overhead_pct[0] >= 0.0

    # Planar << non-planar extreme at Pz=16.
    # Paper: ~30% for K2D5pt4096, ~200% for nlpkkt80 at Pz=16. Our KKT
    # proxy's separators are slightly better than the real nlpkkt80's, so
    # its overhead lands lower in absolute terms; the planar-vs-KKT gap is
    # the reproducible content.
    k2d = by["K2D5pt4096"].overhead_at_max_pz
    nlp = by["nlpkkt80"].overhead_at_max_pz
    assert k2d < 80.0, f"K2D5pt overhead too high: {k2d:.0f}%"
    assert nlp > 60.0, f"nlpkkt80 overhead too low: {nlp:.0f}%"
    assert nlp > 2 * k2d

    # nlpkkt80 is (near-)worst across the suite, planar matrices cheapest.
    worst = max(series, key=lambda s: s.overhead_at_max_pz)
    assert not worst.planar
    planar_max = max(s.overhead_at_max_pz for s in series if s.planar)
    nonplanar_max = max(s.overhead_at_max_pz for s in series if not s.planar)
    assert planar_max < nonplanar_max

    # Suite-wide spread at Pz=16 is wide (paper: 18% to 245%).
    lo = min(s.overhead_at_max_pz for s in series)
    hi = max(s.overhead_at_max_pz for s in series)
    assert hi / max(lo, 1.0) > 3.0, f"spread too narrow: {lo:.0f}%..{hi:.0f}%"
