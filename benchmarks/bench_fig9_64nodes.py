"""Fig. 9 (lower): normalized factorization time across Pz on 384 ranks.

The paper's 64-node plot. At 4x the ranks of the 16-node case the 2D
baseline is deeper into the communication-bound regime, so (paper Section
V-C) *even the extremely non-planar matrices win* — Serena and nlpkkt80
gain 1.7x / 1.9x — and planar best-case speedups grow relative to the
16-node sweep.
"""

from benchmarks.conftest import run_once, scale
from repro.experiments.fig9 import fig9_text, headline_speedups, run_fig9

P = 384


def test_fig9_64nodes(benchmark):
    results = run_once(benchmark, lambda: run_fig9(P=P, scale=scale()))
    print()
    print(fig9_text(results, P))
    heads = headline_speedups(results)
    print("headline best-config speedups:", heads)

    # Every matrix gains at 384 ranks — including the extreme non-planar
    # ones (the paper's 1.7x/1.9x observation).
    for fm in results:
        assert fm.best_speedup > 1.0, f"{fm.name}: no gain on 384 ranks"
    for fm in results:
        if fm.planar:
            assert fm.best_speedup > 2.0, f"{fm.name}: planar gain too small"

    assert heads["non-planar"][0] > 1.0
    assert heads["planar"][1] > heads["non-planar"][1]


def test_fig9_scaling_16_vs_64_nodes(benchmark):
    """Non-planar matrices benefit *more* from 3D at higher rank counts:
    the 2D baseline is more communication-bound there (paper V-C)."""
    def both():
        names = ["Serena", "nlpkkt80", "K2D5pt4096"]
        r16 = run_fig9(P=96, scale=scale(), names=names)
        r64 = run_fig9(P=384, scale=scale(), names=names)
        return r16, r64

    r16, r64 = run_once(benchmark, both)
    by16 = {r.name: r for r in r16}
    by64 = {r.name: r for r in r64}
    for name in ("Serena", "nlpkkt80"):
        assert by64[name].speedup_at_max_pz > by16[name].speedup_at_max_pz, (
            f"{name}: Pz=16 should pay off more on 384 ranks than on 96")
