"""Validating the paper's analytic cost models against the simulator.

Section IV derives closed-form per-process memory and communication
expressions (Table II). This example measures those quantities on a
sweep of 2D Poisson problems and prints measured/model ratios: a flat
ratio column means the model captures the scaling law (the constants are
absorbed in the first row). It is the interactive companion of
``benchmarks/bench_table2_asymptotics.py``.

Run:  python examples/model_validation.py
"""

from repro import Machine, grid2d_5pt
from repro.analysis import FactorizationMetrics, format_table
from repro.comm import ProcessGrid3D, Simulator
from repro.lu3d import factor_3d
from repro.model import (
    memory_2d_planar,
    optimal_pz_planar,
    volume_2d_planar,
    volume_3d_planar,
)
from repro.symbolic import symbolic_factorize
from repro.tree import greedy_partition

P = 64
PZ = 4
SIDES = (64, 96, 128, 192)


def measure(nx: int, pz: int):
    A, geom = grid2d_5pt(nx)
    sf = symbolic_factorize(A, geom, leaf_size=64, max_block=128)
    tf = greedy_partition(sf, pz)
    grid3 = ProcessGrid3D.from_total(P, pz)
    sim = Simulator(grid3.size, Machine.edison_like())
    factor_3d(sf, tf, grid3, sim, numeric=False)
    m = FactorizationMetrics.from_simulator(sim)
    return A.shape[0], m.mem_resident_total / P, m.w_total_max


def main() -> None:
    rows_2d, rows_3d = [], []
    norm = {}
    for nx in SIDES:
        n, mem2, w2 = measure(nx, 1)
        _, mem3, w3 = measure(nx, PZ)
        # Normalize model constants on the first sweep point.
        if not norm:
            norm = {
                "m2": mem2 / memory_2d_planar(n, P),
                "w2": w2 / volume_2d_planar(n, P),
                "w3": w3 / volume_3d_planar(n, P, PZ),
            }
        rows_2d.append([n, mem2, norm["m2"] * memory_2d_planar(n, P),
                        mem2 / (norm["m2"] * memory_2d_planar(n, P)),
                        w2, norm["w2"] * volume_2d_planar(n, P),
                        w2 / (norm["w2"] * volume_2d_planar(n, P))])
        rows_3d.append([n, w3, norm["w3"] * volume_3d_planar(n, P, PZ),
                        w3 / (norm["w3"] * volume_3d_planar(n, P, PZ))])

    print(format_table(
        ["n", "M meas", "M model", "ratio", "W meas", "W model", "ratio"],
        rows_2d, title=f"2D algorithm vs Eq. (4)/(6), P={P} "
                       "(model constants pinned at the first row)"))
    print()
    print(format_table(
        ["n", "W3D meas", "W3D model", "ratio"], rows_3d,
        title=f"3D algorithm vs Eq. (7)+(10), P={P}, Pz={PZ}"))

    n_last = SIDES[-1] ** 2
    print(f"\nEq. (8) optimal Pz for n={n_last}: "
          f"{optimal_pz_planar(n_last)} "
          f"(continuous {optimal_pz_planar(n_last, round_pow2=False):.1f})")
    drift_limit = 1.5
    for label, rows, col in (("2D memory", rows_2d, 3),
                             ("2D volume", rows_2d, 6),
                             ("3D volume", rows_3d, 3)):
        ratios = [r[col] for r in rows]
        drift = max(ratios) / min(ratios)
        verdict = "OK" if drift < drift_limit else "DRIFTING"
        print(f"{label}: measured/model ratio drifts {drift:.2f}x across "
              f"a {SIDES[-1] ** 2 // SIDES[0] ** 2}x range of n "
              f"-> {verdict}")


if __name__ == "__main__":
    main()
