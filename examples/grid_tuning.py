"""Process-grid tuning study: choosing PXY x Pz for your matrix.

Reproduces, at laptop scale, the decision the paper's Fig. 9/12 inform:
given a fixed budget of P ranks, how should they be arranged? The study
sweeps Pz for one planar and one non-planar matrix (cost-only mode — no
numerics, so it runs at larger n), prints the modeled time / communication
/ memory trade-off, and compares the best sweep point with the analytic
Eq. (8) recommendation.

Run:  python examples/grid_tuning.py
"""

from repro import Machine, SparseLU3D, grid2d_5pt, grid3d_7pt
from repro.analysis import FactorizationMetrics, format_table
from repro.model import optimal_pz_planar

P_TOTAL = 64
PZ_VALUES = (1, 2, 4, 8, 16)


def sweep(name: str, A, geometry) -> None:
    rows = []
    base = None
    for pz in PZ_VALUES:
        pxy = P_TOTAL // pz
        # Factor the same matrix on each grid arrangement (cost-only).
        px = max(1, int(pxy ** 0.5))
        while pxy % px:
            px -= 1
        solver = SparseLU3D(A, geometry=geometry, px=px, py=pxy // px, pz=pz,
                            leaf_size=64, max_block=128, numeric=False,
                            machine=Machine.edison_like())
        solver.factorize()
        m = FactorizationMetrics.from_simulator(solver.sim)
        if base is None:
            base = m
        rows.append([f"{px}x{pxy // px}x{pz}",
                     m.makespan * 1e3,
                     base.makespan / m.makespan,
                     m.w_total_max,
                     m.mem_peak_total / base.mem_peak_total])
    print(format_table(
        ["grid", "T [ms]", "speedup", "W/rank [words]", "memory x"],
        rows, title=f"--- {name}: P = {P_TOTAL} ranks ---"))
    print()


def main() -> None:
    A2, g2 = grid2d_5pt(128)           # planar, n = 16384
    sweep("2D Poisson 128x128 (planar)", A2, g2)
    print(f"Eq. (8) recommends Pz ~ log2(n)/2 = "
          f"{optimal_pz_planar(A2.shape[0])} for the planar problem\n")

    A3, g3 = grid3d_7pt(20)            # non-planar, n = 8000
    sweep("3D Poisson 20^3 (non-planar)", A3, g3)
    print("Note the non-planar trade-off: time keeps improving only while "
          "the shrinking 2D grids\ncan still absorb the top-separator "
          "work; memory grows much faster than for the planar case.")


if __name__ == "__main__":
    main()
