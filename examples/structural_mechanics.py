"""SPD structural-mechanics workflow: auto-tune, Cholesky-factor, trace.

Ties three library extensions together on a 3D-FEM-like problem (the
class audikw_1/Serena represent in the paper's suite):

1. the auto-tuner measures the matrix's separator-growth exponent and
   recommends a process-grid shape (Section IV's planar/non-planar regimes);
2. the SPD system is factored with the 3D *Cholesky* engine (Section
   VII's proposed variant) on that grid;
3. an execution trace shows where each rank's time went, including the
   ancestor-reduction phase along z.

Run:  python examples/structural_mechanics.py
"""

import numpy as np

from repro import Machine, grid3d_7pt
from repro.analysis import FactorizationMetrics, Trace
from repro.cholesky import SparseCholesky3D
from repro.comm import Simulator
from repro.cholesky.factor import factor_chol_3d
from repro.tune import suggest_grid

P_BUDGET = 32


def main() -> None:
    # A 14^3 brick stiffness-like SPD operator (n = 2744).
    A, geometry = grid3d_7pt(14)
    n = A.shape[0]
    print(f"stiffness matrix: n={n}, nnz/n={A.nnz / n:.1f} (3D brick)")

    # 1. Auto-tune the grid for a 32-rank budget.
    s = suggest_grid(A, P_BUDGET, geometry=geometry)
    print(f"auto-tuner: sigma={s.sigma:.2f} -> {s.classification};"
          f" grid {s.px}x{s.py}x{s.pz}")
    print(f"            {s.rationale}")

    # 2. Cholesky-factor on the suggested grid and solve a load case.
    solver = SparseCholesky3D(A, geometry=geometry, px=s.px, py=s.py,
                              pz=s.pz, leaf_size=64,
                              machine=Machine.edison_like())
    solver.factorize()
    loads = np.zeros((n, 2))
    loads[n // 2, 0] = 1.0          # point load
    loads[:, 1] = 1.0 / n           # distributed load
    u = solver.solve(loads)
    res = np.linalg.norm(A @ u - loads) / np.linalg.norm(loads)
    print(f"two load cases solved; residual {res:.2e}")

    m = FactorizationMetrics.from_simulator(solver.sim)
    print(f"modeled factor time {m.makespan * 1e3:.2f} ms; "
          f"flops {m.total_flops:.3g} (Cholesky = half of LU's)")

    # 3. Re-run the factorization schedule with tracing to see the
    #    timeline (cost-only: the numbers are identical).
    trace = Trace()
    sim = Simulator(solver.grid.size, solver.machine, trace=trace)
    factor_chol_3d(solver.sf, solver.tf, solver.grid, sim, numeric=False)
    print("\nper-rank timeline (D=diag P=panel S=schur R=reduce "
          ">=send .=wait):")
    print(trace.gantt(sim.nranks, width=70))
    util = trace.utilization(sim.nranks, horizon=sim.makespan)
    print(f"\ncompute utilization: mean {util.mean():.0%}, "
          f"min {util.min():.0%}, max {util.max():.0%}")
    worst = int(np.argmax(sim.clock))
    kinds = {k: v for k, v in sorted(trace.time_by_kind().items())}
    print(f"aggregate time by kind: "
          + ", ".join(f"{k} {v * 1e3:.2f}ms" for k, v in kinds.items()))
    print(f"critical rank r{worst} finishing at "
          f"{sim.clock[worst] * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
