"""DC operating-point analysis of a power-distribution network.

The paper's suite includes G3_circuit and ecology1 — planar-ish,
very sparse matrices from circuit and lattice models, the class where the
3D algorithm shines (Section V-B). This example builds a jittered
power-grid conductance matrix, solves for node voltages under several
current-injection patterns reusing one factorization, and shows the
2D-vs-3D communication ledger for this matrix class.

Run:  python examples/circuit_analysis.py
"""

import numpy as np

from repro import SparseLU3D, circuit_like


def main() -> None:
    # A 64 x 64 power grid with random vias (n = 4096, nnz/n ~ 5).
    G, geometry = circuit_like(64, seed=3)
    n = G.shape[0]
    print(f"conductance matrix: n={n}, nnz/n={G.nnz / n:.1f}")

    solver = SparseLU3D(G, geometry=geometry, px=2, py=2, pz=4, leaf_size=64)
    solver.factorize()

    rng = np.random.default_rng(0)
    scenarios = {
        "single load":   _inject(n, rng, loads=1),
        "clustered":     _inject(n, rng, loads=8),
        "distributed":   _inject(n, rng, loads=64),
    }
    for name, i_inj in scenarios.items():
        v = solver.solve(i_inj)
        res = np.linalg.norm(G @ v - i_inj) / np.linalg.norm(i_inj)
        print(f"{name:12s}: |v| range [{v.min():+.3e}, {v.max():+.3e}]  "
              f"residual {res:.1e}")
        assert res < 1e-10

    # The communication story for this matrix class: compare with a pure
    # 2D run of the same total rank count.
    flat = SparseLU3D(G, geometry=geometry, px=4, py=4, pz=1, leaf_size=64)
    flat.factorize()
    w3d = solver.comm_volume().max()
    w2d = flat.comm_volume().max()
    print(f"\nper-rank comm volume, 16 ranks: 2D(4x4x1) {w2d:.3g} words vs "
          f"3D(2x2x4) {w3d:.3g} words -> {w2d / w3d:.2f}x reduction")
    print(f"modeled factor time: 2D {flat.makespan * 1e3:.2f} ms vs "
          f"3D {solver.makespan * 1e3:.2f} ms")


def _inject(n: int, rng, loads: int) -> np.ndarray:
    """Current injections: `loads` sinks balanced by one source."""
    i = np.zeros(n)
    sinks = rng.choice(n - 1, size=loads, replace=False) + 1
    i[sinks] = -1.0 / loads
    i[0] = 1.0
    return i


if __name__ == "__main__":
    main()
