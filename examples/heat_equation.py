"""Implicit heat-equation time stepping: factor once, solve every step.

The workload sparse direct solvers are built for (and the paper's intro
motivates): an implicit time integrator solves the *same* linear system
``(I + dt*L) u_{k+1} = u_k`` at every step, so one factorization is
amortized over many triangular solves. This example integrates the 2D
heat equation with backward Euler on a 48 x 48 grid, using the 3D
factorization on a 2 x 2 x 2 simulated grid, and reports both the physics
(heat diffusing from a hot spot) and the amortization economics.

Run:  python examples/heat_equation.py
"""

import numpy as np
import scipy.sparse as sp

from repro import SparseLU3D, grid2d_5pt


def main() -> None:
    nx = 48
    n = nx * nx
    dt = 0.1

    # grid2d_5pt returns the (positive definite) 5-point Laplacian with
    # diagonal 4; I + dt*L is the backward-Euler operator.
    L, geometry = grid2d_5pt(nx)
    A = (sp.identity(n) + dt * L).tocsr()

    solver = SparseLU3D(A, geometry=geometry, px=2, py=2, pz=2, leaf_size=48)
    solver.factorize()
    factor_time = solver.makespan
    print(f"factorization: modeled {factor_time * 1e3:.2f} ms on "
          f"{solver.grid.size} ranks ({solver.grid!r})")

    # Initial condition: a hot square in the center.
    u = np.zeros((nx, nx))
    u[20:28, 20:28] = 100.0
    u = u.ravel()
    total_heat = []

    solve_clock_start = solver.sim.makespan
    nsteps = 20
    for _ in range(nsteps):
        u = solver.solve(u, refine=False)
        total_heat.append(u.sum())
    solve_time = (solver.sim.makespan - solve_clock_start) / nsteps

    print(f"{nsteps} backward-Euler steps, modeled {solve_time * 1e3:.3f} ms "
          f"per solve ({factor_time / solve_time:.1f} solves amortize one "
          f"factorization)")

    # Physics sanity: diffusion conserves heat (up to boundary losses) and
    # flattens the peak.
    u_grid = u.reshape(nx, nx)
    print(f"peak temperature: 100.0 -> {u_grid.max():.2f}")
    print(f"heat at t0 {total_heat[0]:.4f} -> t_end {total_heat[-1]:.4f} "
          "(boundary absorbs the rest)")
    assert u_grid.max() < 100.0
    assert total_heat[-1] < total_heat[0]
    center = u_grid[24, 24]
    corner = u_grid[0, 0]
    assert center > corner, "heat should still be centered"
    print("OK: diffusion behaves physically")


if __name__ == "__main__":
    main()
