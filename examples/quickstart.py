"""Quickstart: factor and solve a sparse system with the 3D algorithm.

Builds a 2D Poisson problem, factors it on a simulated 2 x 2 x 4 process
grid (16 virtual ranks, Pz = 4), solves against a manufactured right-hand
side, and prints the accuracy plus the communication/memory ledgers the
paper's evaluation is based on.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Machine, SparseLU3D, grid2d_5pt


def main() -> None:
    # A 64 x 64 five-point Poisson matrix (n = 4096) with its lattice
    # geometry, which enables geometric nested dissection.
    A, geometry = grid2d_5pt(64)
    n = A.shape[0]
    print(f"matrix: n={n}, nnz={A.nnz} (5-point Poisson on 64x64 grid)")

    # A solver on a 2 x 2 x 4 grid: four 2D layers of 2x2 ranks each.
    solver = SparseLU3D(A, geometry=geometry, px=2, py=2, pz=4,
                        leaf_size=64, machine=Machine.edison_like())
    solver.factorize()
    print(f"symbolic: {solver.sf.describe()}")
    print(f"tree-forest: {solver.tf!r}")

    # Solve against a manufactured solution.
    rng = np.random.default_rng(42)
    x_true = rng.standard_normal(n)
    b = A @ x_true
    x = solver.solve(b)

    err = np.linalg.norm(x - x_true) / np.linalg.norm(x_true)
    res = np.linalg.norm(A @ x - b) / np.linalg.norm(b)
    print(f"solution error      : {err:.2e}")
    print(f"relative residual   : {res:.2e}")
    print(f"refinement iterations: {solver.last_refinement.iterations}")

    # The evaluation quantities (what the paper plots).
    print(f"modeled factor time : {solver.makespan * 1e3:.2f} ms")
    print(f"per-rank comm volume: max {solver.comm_volume().max():.3g} words"
          f" (fact {solver.comm_volume('fact').max():.3g},"
          f" red {solver.comm_volume('red').max():.3g})")
    print(f"per-rank peak memory: max {solver.peak_memory.max():.3g} words")


if __name__ == "__main__":
    main()
